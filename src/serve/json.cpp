#include "serve/json.hpp"

#include <cctype>
#include <cstdlib>

#include "support/strings.hpp"

namespace owl::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

JsonValue JsonValue::make_double(double v) {
  JsonValue out;
  out.kind_ = Kind::kDouble;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(Members v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(v);
  return out;
}

namespace {

/// Recursive-descent parser over a bounded view. Depth is capped so a
/// hostile request ("[[[[[..." ) exhausts the limit, not the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      error = str_format("byte %zu: %s", pos_, error_.c_str());
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = str_format("byte %zu: trailing characters", pos_);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  bool consume(char expected, const char* message) {
    if (at_end() || text_[pos_] != expected) return fail(message);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string text;
        if (!parse_string(text)) return false;
        out = JsonValue::make_string(std::move(text));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      default: return parse_number(out);
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonValue::Members members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (at_end() || peek() != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return true;
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code_point = 0;
          if (!parse_hex4(code_point)) return false;
          if (code_point >= 0xd800 && code_point <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xdc00 || low > 0xdfff) {
              return fail("unpaired surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xd800) << 10) + (low - 0xdc00);
          } else if (code_point >= 0xdc00 && code_point <= 0xdfff) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: return fail("bad escape");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected value");
    }
    const char first_digit = peek();
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. an error).
    if (first_digit == '0' && pos_ - start > (text_[start] == '-' ? 2u : 1u)) {
      return fail("leading zero");
    }
    bool integral = true;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad fraction");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      std::int64_t value = 0;
      if (owl::parse_int64(token, value)) {
        out = JsonValue::make_int(value);
        return true;
      }
      // Integral but out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out = JsonValue::make_double(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonValue::parse(std::string_view text, JsonValue& out,
                      std::string& error) {
  Parser parser(text);
  return parser.run(out, error);
}

}  // namespace owl::serve
