// Content-addressed result cache for the serve layer (DESIGN.md §10).
//
// Key = SHA-256 over (module-text SHA, canonical-options SHA): two requests
// share an entry iff the analyzed bytes and every behavioral option agree.
// The value is the complete response payload — the owl_cli-identical output
// bytes, the exit status, the degraded flag, and the environment-stripped
// run manifest — so a warm hit serves exactly what the cold run produced.
//
// Integrity invariants (the "never serve a torn or corrupt entry" half of
// the crash-recovery story):
//  - writes are atomic: entry bytes go to a same-directory temp file that
//    is fsync'd and rename(2)d into place, so a kill -9 leaves either the
//    old entry, the new entry, or a stale *.tmp (swept on open) — never a
//    half-written entry under the final name;
//  - reads verify: the entry embeds a SHA-256 over its manifest + payload
//    (the manifest hash of the run that produced it); any mismatch — bit
//    flip, truncation, header damage — evicts the entry (unlink) and
//    reports a miss, so the daemon recomputes instead of serving bytes it
//    cannot vouch for.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace owl::serve {

/// One cached analysis result.
struct CacheEntry {
  int exit_code = 0;
  bool degraded = false;
  std::string manifest;  ///< environment-stripped run manifest (JSON)
  std::string output;    ///< owl_cli-identical stdout bytes
  /// SHA-256 over (manifest, output, exit, degraded) — computed on write,
  /// verified on read. Doubles as the response's provenance hash.
  std::string content_sha;
};

class ResultCache {
 public:
  /// A cache rooted at `dir` ("" disables: every lookup misses, every
  /// store is dropped). Creates the directory and sweeps stale *.tmp
  /// files left by a killed writer. `max_entries` caps the on-disk entry
  /// count (0 = unlimited): once a store pushes the cache past the cap,
  /// the least-recently-used entries are unlinked. Recency is seeded from
  /// the directory listing (mtime, then name — deterministic across
  /// equal-mtime restarts) and updated on every hit and store.
  explicit ResultCache(std::string dir, std::size_t max_entries = 0);

  bool enabled() const noexcept { return !dir_.empty(); }

  /// Derives the content address for one request.
  static std::string key_for(const std::string& module_text,
                             const std::string& options_blob);

  /// Loads and verifies the entry for `key`. Returns false on miss; a
  /// present-but-corrupt entry is evicted (counted separately) and
  /// reported as a miss.
  bool load(const std::string& key, CacheEntry& out);

  /// Atomically persists `entry` under `key`, filling entry.content_sha.
  /// Returns false on I/O failure (the daemon degrades to uncached).
  bool store(const std::string& key, CacheEntry& entry);

  /// Removes the entry for `key` if present (used by fault injection and
  /// by load() on integrity failure).
  void evict(const std::string& key);

  /// Filesystem path that `key`'s entry lives at (tests bit-flip it).
  std::string entry_path(const std::string& key) const;

  // --- counters (monotonic over the cache's lifetime) ---
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t stores() const noexcept { return stores_; }

  /// Keys currently tracked by the LRU index (== on-disk entries, absent
  /// outside interference). Exposed for the eviction tests.
  std::size_t tracked_entries() const noexcept { return lru_index_.size(); }

 private:
  /// Marks `key` most-recently-used (inserting it if untracked).
  void touch(const std::string& key);
  /// Unlinks least-recently-used entries until the cap is respected.
  void enforce_cap();

  std::string dir_;
  std::size_t max_entries_ = 0;  ///< 0 = unlimited
  /// Recency order, least-recently-used first; only maintained when a cap
  /// is set (an unlimited cache never pays the bookkeeping).
  std::list<std::string> lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator>
      lru_index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t stores_ = 0;
};

/// SHA-256 the cache uses to seal an entry's content; exposed so tests and
/// the journal replay can recompute it independently.
std::string cache_content_sha(const CacheEntry& entry);

}  // namespace owl::serve
