// The owl_serve wire protocol: newline-delimited JSON over a Unix-domain
// socket (DESIGN.md §10).
//
// One request per line, one response line per request. Responses echo the
// request's `id`; when requests overlap (several analyzes pipelined on one
// connection) responses may arrive out of order — immediate answers (pings,
// rejections) overtake queued analyses — so clients correlate by id. Ops:
//
//   {"op":"analyze", "id":"r1", "client":"ci",
//    "module_path":"examples/ir/toctou.mir",      // or "module_text":"..."
//    "name":"toctou",                              // display name for
//                                                  // module_text (defaults
//                                                  // to "<inline>")
//    "options":{...}}                              // see AnalysisOptions
//   {"op":"ping"}
//   {"op":"stats"}        // server counters (admission, cache, journal)
//   {"op":"shutdown"}     // graceful drain, same as SIGTERM
//
// `op` defaults to "analyze" so the minimal request is just a module.
// Responses:
//
//   {"id":...,"status":"ok","cache":"hit"|"miss"|"off","exit":0,
//    "degraded":false,"manifest_sha":"...","output":"<owl_cli stdout>",
//    "error":""}
//   {"id":...,"status":"rejected","reason":"queue_full"|
//    "client_inflight_exceeded"|"shutting_down","retry_after_ms":100}
//   {"id":...,"status":"error","reason":"..."}    // malformed request,
//                                                  // unreadable module,
//                                                  // injected service fault
//
// The `output` field of an "ok"/"error" analyze response carries exactly
// the bytes one-shot `owl_cli` would print to stdout for the same module
// and options, and `exit` its exit status — the differential gate
// (scripts/serve_check.py) compares both. `options` is strict: unknown
// keys are an error, because a silently ignored option would produce a
// response that is byte-identical to the *wrong* owl_cli invocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "race/tsan_detector.hpp"
#include "serve/json.hpp"
#include "support/status.hpp"

namespace owl::serve {

/// Per-request analysis options — the service mirror of owl_cli's flags
/// (only the analysis-behavioral ones; process concerns like --trace-out
/// stay CLI-only). Defaults match owl_cli exactly, so an empty options
/// object means "what owl_cli does with no flags".
struct AnalysisOptions {
  std::string entry = "main";
  std::vector<std::int64_t> inputs;
  std::vector<std::int64_t> exploit_inputs;  ///< empty = same as inputs
  core::DetectorKind detector = core::DetectorKind::kTsan;
  race::DetectorImpl detector_impl = race::DetectorImpl::kFast;
  race::PrescreenMode prescreen = race::PrescreenMode::kOff;
  race::PredictMode predict = race::PredictMode::kOff;
  analysis::ValueFlowMode vuln_flow = analysis::ValueFlowMode::kOff;
  unsigned schedules = 4;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 400'000;
  bool adhoc = true;
  bool race_verifier = true;
  bool vuln_verifier = true;
  bool whole_program = false;
  bool print_module = false;
  bool print_reports = false;
  bool quiet = false;
  double stage_deadline = 0.0;  ///< 0 = unlimited
  unsigned retries = 2;
  unsigned jobs = 1;  ///< intra-request parallelism (verifier sharding)
  /// Concurrency checker suite selection (mirror of --checkers); stored
  /// parsed so canonical_blob hashes the canonical spelling, not whatever
  /// comma order the client typed.
  checkers::CheckerOptions checkers;
  /// Mirror of `--sarif-out -`: append the SARIF 2.1.0 log to the output.
  bool sarif = false;
  /// Mirror of `--repair DIR` minus the DIR: the repair stage runs and its
  /// path-independent report renders into the output; the daemon never
  /// writes fixed-module files (that emission is CLI-only).
  bool repair = false;

  /// Parses the "options" object; st carries the offending key on error.
  static bool from_json(const JsonValue& value, AnalysisOptions& out,
                        std::string& error);

  /// Canonical key=value text form, one option per line in a fixed order,
  /// with the target's display name folded in (the name appears in the
  /// rendered output, so it is part of what identifies a result). This
  /// blob — not the JSON, whose member order the client controls — is what
  /// the cache key hashes.
  std::string canonical_blob(const std::string& target_name) const;
};

/// One parsed request line.
struct Request {
  enum class Op { kAnalyze, kPing, kStats, kShutdown };
  Op op = Op::kAnalyze;
  std::string id;           ///< echoed verbatim in the response ("" ok)
  std::string client;       ///< admission-control identity ("" = per-conn)
  std::string module_path;  ///< exactly one of module_path/module_text
  std::string module_text;
  std::string name;         ///< display name for module_text
  AnalysisOptions options;

  /// Display name as owl_cli would print it: the path, or name/"<inline>".
  const std::string& display_name() const noexcept {
    static const std::string kInline = "<inline>";
    if (!module_path.empty()) return module_path;
    return name.empty() ? kInline : name;
  }
};

/// Parses one request line. On failure the returned status describes the
/// problem (the server answers with a structured "error" response).
Status parse_request(std::string_view line, Request& out);

/// Serializes an analyze request in resolved form — module text inline,
/// display name pinned, every option explicit — as one line WITHOUT the
/// trailing '\n'. This is the journal's A-record payload: the round trip
/// parse_request(serialize_request(r)) reproduces the module bytes, the
/// display name, and every option, so a post-crash replay recomputes the
/// same cache key and byte-identical output with no filesystem dependency.
std::string serialize_request(const Request& request);

// --- response builders (all return one line, '\n' included) ---

/// Completed analysis (exit 0/2/3): cache is "hit", "miss", or "off".
std::string ok_response(const std::string& id, std::string_view cache,
                        int exit_code, bool degraded,
                        const std::string& manifest_sha,
                        const std::string& output, const std::string& error);

/// Load-shed / drain rejection with the client's structured retry hint.
std::string rejected_response(const std::string& id, std::string_view reason,
                              unsigned retry_after_ms);

/// Malformed request or service-layer failure.
std::string error_response(const std::string& id, const std::string& reason);

std::string ping_response();

}  // namespace owl::serve
