// Per-request analysis execution for the serve layer (DESIGN.md §10).
//
// One Executor::run() is the in-process twin of one `owl_cli <module>
// [flags]` invocation: same module loading, same pipeline wiring (PR 1
// budgets/retries, PR 2 ThreadPool for --jobs verifier sharding, PR 3/5
// substrate and prescreen options), same rendering (core/render.hpp), same
// exit-code contract — so the returned output/exit are byte-identical to
// the one-shot CLI by construction, which is what the differential gate
// verifies end to end.
//
// Isolation: every run builds its module, machines, detectors, and
// pipeline from scratch, and the process-wide MetricsRegistry is reset()
// at entry — a request observes exactly the state a fresh owl_cli process
// would. That reset is also why the daemon executes requests one at a time
// (the executor is owned and driven by a single ServiceCore thread):
// serialized execution is a *correctness* choice — it is what makes every
// response reproducible and the audit exit path well-defined — while
// throughput comes from the result cache and per-request --jobs
// parallelism, not from interleaving analyses that share process globals.
#pragma once

#include <string>

#include "serve/protocol.hpp"
#include "support/fault_injector.hpp"

namespace owl::serve {

/// Outcome of one analysis execution.
struct ExecResult {
  int exit_code = 0;      ///< owl_cli exit contract: 0 ran, 1/2 load, 3 audit
  bool ran_pipeline = false;  ///< false for load/verify failures (uncacheable)
  bool degraded = false;
  std::string output;     ///< owl_cli stdout bytes
  std::string error;      ///< owl_cli stderr bytes (load errors, audit note)
  std::string manifest;   ///< environment-stripped run manifest (JSON)
};

class Executor {
 public:
  /// `pipeline_faults` (optional, not owned) injects pipeline-stage faults
  /// into every request — the daemon-level equivalent of owl_cli
  /// --inject-fault detect:..., used by serve_fault_test and serve_check.
  explicit Executor(support::FaultInjector* pipeline_faults = nullptr)
      : pipeline_faults_(pipeline_faults) {}

  /// Executes one analysis request. Never throws: internal faults degrade
  /// into the FailureRecord machinery (pipeline stages) or an exit-1
  /// ExecResult (load phase).
  ExecResult run(const std::string& module_text,
                 const std::string& display_name,
                 const AnalysisOptions& options);

 private:
  support::FaultInjector* pipeline_faults_;
};

/// Reads the module file the way owl_cli does; false + error text on
/// failure (the error is the owl_cli stderr line, byte-identical).
bool read_module_file(const std::string& path, std::string& text,
                      std::string& error);

}  // namespace owl::serve
