#include "serve/request_queue.hpp"

namespace owl::serve {

std::string_view shed_reason_name(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kClientInflight: return "client_inflight_exceeded";
    case ShedReason::kShuttingDown: return "shutting_down";
  }
  return "?";
}

}  // namespace owl::serve
