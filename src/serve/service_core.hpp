// Transport-agnostic heart of owl_served (DESIGN.md §10): one object that
// owns the four robustness layers and exposes exactly two entry points —
// handle_line() for reader threads and the executor loop it runs itself.
//
// Request lifecycle (the five service phases fault injection can probe):
//
//   reader thread                          executor thread
//   -------------                          ---------------
//   parse -> [admit] admission check
//         -> resolve module bytes
//         -> journal A   (durability
//            point: accepted)
//         -> [enqueue] push ------------>  pop
//                                          [cache-read]  lookup/verify
//                                          miss: Executor::run
//                                          [cache-write] atomic store
//                                          [respond]     response line
//                                          journal C     (settled)
//                                          release admission slot
//
// Failure semantics per phase (all injectable, all leave the daemon
// serving):
//  - admit/enqueue throw  -> structured "error" response; slot released,
//    journal settled — the request dies cleanly at the edge;
//  - cache-read throw     -> "error" response (the entry could not be
//    trusted and the daemon chose not to guess);
//  - cache-read corrupt   -> the entry is evicted first, forcing the
//    verify-evict-recompute path the integrity tests assert;
//  - cache-write throw    -> the response is served uncached — a broken
//    cache degrades throughput, never correctness;
//  - cache-write corrupt  -> the stored entry is bit-flipped on disk, so
//    the NEXT read must detect, evict, and recompute;
//  - respond throw        -> the response is dropped and the journal C is
//    deliberately withheld: to the client this is a daemon crash mid-reply,
//    and restart-replay must make the result available warm;
//  - stall at any phase   -> a bounded hang (kServiceHangMs) — the
//    deterministic window the crash-recovery test kill -9s into.
//
// Execution is intentionally serialized on one executor thread: the
// analysis pipeline reads process globals (MetricsRegistry) that
// Executor::run resets per request, so serial execution is what makes every
// response byte-identical to a fresh owl_cli process (see executor.hpp).
// Concurrency lives at the edges — many reader threads feed the bounded
// queue, and warm cache hits, though served from the same loop, cost
// microseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "serve/executor.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_cache.hpp"
#include "support/fault_injector.hpp"

namespace owl::serve {

/// Bounded sleep for an injected service-phase stall (milliseconds) — long
/// enough for a test to kill -9 into the window, short enough that a stray
/// plan cannot wedge CI.
inline constexpr unsigned kServiceHangMs = 2000;

class ServiceCore {
 public:
  /// Delivers one response line to whoever owns the connection. May be
  /// invoked from the reader thread (rejections, errors, pings) or the
  /// executor thread (analyze responses); the transport serializes its own
  /// writes. An empty function is valid (journal replay answers nobody).
  using Respond = std::function<void(const std::string&)>;

  struct Config {
    std::string cache_dir;       ///< "" = result cache off
    /// Result-cache entry cap (0 = unlimited): storing past the cap
    /// unlinks the least-recently-used entries (--cache-max-entries).
    std::size_t cache_max_entries = 0;
    std::string journal_path;    ///< "" = crash-recovery journal off
    std::size_t queue_depth = 32;
    std::size_t max_inflight_per_client = 8;
    unsigned retry_after_ms = 100;  ///< hint echoed in rejections
    /// Service-phase fault injection (not owned; probes are serialized
    /// behind an internal mutex). nullptr = no injection.
    support::FaultInjector* service_faults = nullptr;
    /// Pipeline-stage fault injection forwarded into every Executor::run
    /// (not owned) — the daemon twin of owl_cli --inject-fault detect:...
    support::FaultInjector* pipeline_faults = nullptr;
  };

  /// What the transport should do after a handled line.
  enum class LineOutcome { kContinue, kShutdownRequested };

  explicit ServiceCore(Config config);
  ~ServiceCore();

  /// Replays accepted-but-unsettled journal entries from a previous
  /// incarnation into the result cache (synchronously; call before
  /// start()). Returns the number of requests replayed. Resets the journal
  /// afterwards — every survivor is settled into a verified cache entry.
  std::size_t recover_journal();

  /// Starts the executor thread. Call once, after recover_journal().
  void start();

  /// Handles one protocol line from `fallback_client`'s connection (used
  /// as the admission identity when the request names no "client").
  /// Thread-safe; called concurrently by reader threads.
  LineOutcome handle_line(const std::string& line,
                          const std::string& fallback_client,
                          Respond respond);

  /// Stops admitting (new analyzes shed with "shutting_down"); already
  /// accepted work keeps flowing.
  void begin_drain();

  /// Drains: blocks until every admitted request is settled, then stops
  /// the executor thread. The journal is reset iff nothing is left
  /// unsettled (a dropped response keeps its A record for the next boot).
  void shutdown();

  /// Counters snapshot as a one-line JSON response (the "stats" op).
  std::string stats_response() const;

  std::uint64_t replayed() const noexcept { return replayed_.load(); }

 private:
  struct PendingWork {
    std::string id;
    std::string client;
    std::string display_name;
    std::string module_text;
    std::string key;
    AnalysisOptions options;
    Respond respond;
  };

  void process(PendingWork work, bool replay);
  void settle(const std::string& key, const std::string& client, bool replay);
  void journal_completed(const std::string& key);

  // Service-phase fault probes (serialized: reader threads and the
  // executor thread share one injector).
  void fault_hang(support::PipelineStage phase);
  void fault_throw(support::PipelineStage phase);
  bool fault_corrupt(support::PipelineStage phase);

  Config config_;
  ResultCache cache_;
  Journal journal_;
  Executor executor_;
  RequestQueue<PendingWork> queue_;
  std::thread worker_;
  bool started_ = false;

  std::mutex fault_mutex_;          ///< serializes service injector probes
  mutable std::mutex cache_mutex_;  ///< cache ops vs. stats snapshots

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_client_inflight_{0};
  std::atomic<std::uint64_t> shed_shutting_down_{0};
  std::atomic<std::uint64_t> request_errors_{0};
  std::atomic<std::uint64_t> dropped_responses_{0};
  std::atomic<std::uint64_t> replayed_{0};
  std::atomic<std::uint64_t> journal_pending_{0};
};

}  // namespace owl::serve
