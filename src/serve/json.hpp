// Minimal JSON value model + strict parser for the serve protocol.
//
// The daemon's wire format is newline-delimited JSON (one request, one
// line), so the parser only needs RFC 8259 values — objects, arrays,
// strings with escapes, numbers, true/false/null — not streaming or
// comments. It is strict on purpose: a service that silently coerces a
// malformed request into "something close" would break the differential
// guarantee, so any deviation is a parse error with a position, and the
// caller turns it into a structured `error` response.
//
// Writing JSON does not go through this model: responses are assembled
// directly with support::json_quote (same as the manifest renderer), which
// keeps field order deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace owl::serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Object members keep source order (deterministic iteration).
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_int() const noexcept { return kind_ == Kind::kInt; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  std::int64_t as_int() const noexcept { return int_; }
  double as_double() const noexcept {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& as_array() const noexcept { return array_; }
  const Members& as_object() const noexcept { return members_; }

  /// First member named `key`, or nullptr.
  const JsonValue* find(std::string_view key) const noexcept;

  // --- construction (parser + tests) ---
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(Members v);

  /// Parses exactly one JSON value spanning all of `text` (surrounding
  /// whitespace allowed, trailing garbage is an error). On failure returns
  /// false and describes the problem in `error`.
  static bool parse(std::string_view text, JsonValue& out, std::string& error);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  Members members_;
};

}  // namespace owl::serve
