#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace owl::serve {
namespace {

// Record formats (one line each, '\t'-separated so the payload — a JSON
// request line — can contain any byte but '\n' and '\t' is never emitted
// by json_quote'd text):
//   A\t<key>\t<payload_sha>\t<request_line>
//   C\t<key>
constexpr char kAccepted = 'A';
constexpr char kCompleted = 'C';

}  // namespace

bool Journal::open(const std::string& path) {
  close();
  if (path.empty()) return true;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return false;
  path_ = path;
  return true;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

bool Journal::append_line(const std::string& line) {
  if (fd_ < 0) return true;
  // One write(2) per record: O_APPEND makes the append atomic with respect
  // to other appends, and the bytes reach the kernel (kill -9 durable)
  // before the call returns.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t put =
        ::write(fd_, line.data() + written, line.size() - written);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(put);
  }
  return true;
}

bool Journal::accepted(const std::string& key,
                       const std::string& request_line) {
  std::string line(1, kAccepted);
  line += '\t';
  line += key;
  line += '\t';
  line += support::sha256_hex(request_line);
  line += '\t';
  line += request_line;
  line += '\n';
  return append_line(line);
}

bool Journal::completed(const std::string& key) {
  std::string line(1, kCompleted);
  line += '\t';
  line += key;
  line += '\n';
  return append_line(line);
}

std::vector<JournalEntry> Journal::recover() {
  std::vector<JournalEntry> incomplete;
  if (fd_ < 0) return incomplete;
  std::string raw;
  {
    const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return incomplete;
    char buffer[1 << 16];
    while (true) {
      const ssize_t got = ::read(fd, buffer, sizeof buffer);
      if (got < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (got == 0) break;
      raw.append(buffer, static_cast<std::size_t>(got));
    }
    ::close(fd);
  }

  // First pass honors order: later A records for the same key supersede
  // earlier ones; a C record settles the key.
  std::vector<JournalEntry> accepted_order;
  std::size_t begin = 0;
  while (begin < raw.size()) {
    const std::size_t end = raw.find('\n', begin);
    if (end == std::string::npos) break;  // torn final line: never accepted
    const std::string_view line(raw.data() + begin, end - begin);
    begin = end + 1;
    if (line.size() < 2 || line[1] != '\t') continue;  // corrupt: skip
    if (line[0] == kCompleted) {
      const std::string key(line.substr(2));
      for (auto it = accepted_order.begin(); it != accepted_order.end();) {
        if (it->key == key) {
          it = accepted_order.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    if (line[0] != kAccepted) continue;
    const std::size_t key_end = line.find('\t', 2);
    if (key_end == std::string_view::npos) continue;
    const std::size_t sha_end = line.find('\t', key_end + 1);
    if (sha_end == std::string_view::npos) continue;
    JournalEntry entry;
    entry.key = std::string(line.substr(2, key_end - 2));
    const std::string_view sha = line.substr(key_end + 1, sha_end - key_end - 1);
    entry.request_line = std::string(line.substr(sha_end + 1));
    // A bit-flipped record must not replay as a different request.
    if (support::sha256_hex(entry.request_line) != sha) continue;
    // Supersede any earlier unsettled A for the same key.
    for (auto it = accepted_order.begin(); it != accepted_order.end();) {
      if (it->key == entry.key) {
        it = accepted_order.erase(it);
      } else {
        ++it;
      }
    }
    accepted_order.push_back(std::move(entry));
  }
  return accepted_order;
}

bool Journal::reset() {
  if (fd_ < 0) return true;
  return ::ftruncate(fd_, 0) == 0;
}

}  // namespace owl::serve
