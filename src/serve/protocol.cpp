#include "serve/protocol.hpp"

#include "core/manifest.hpp"
#include "race/prescreen_view.hpp"
#include "support/strings.hpp"

namespace owl::serve {
namespace {

bool read_uint(const JsonValue& value, std::uint64_t& out) {
  if (!value.is_int() || value.as_int() < 0) return false;
  out = static_cast<std::uint64_t>(value.as_int());
  return true;
}

bool read_word_list(const JsonValue& value, std::vector<std::int64_t>& out) {
  if (!value.is_array()) return false;
  out.clear();
  for (const JsonValue& item : value.as_array()) {
    if (!item.is_int()) return false;
    out.push_back(item.as_int());
  }
  return true;
}

std::string words_csv(const std::vector<std::int64_t>& words) {
  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(words[i]);
  }
  return out;
}

}  // namespace

bool AnalysisOptions::from_json(const JsonValue& value, AnalysisOptions& out,
                                std::string& error) {
  if (!value.is_object()) {
    error = "options must be an object";
    return false;
  }
  const auto bad = [&error](const std::string& key) {
    error = "bad value for option \"" + key + "\"";
    return false;
  };
  for (const auto& [key, field] : value.as_object()) {
    if (key == "entry") {
      if (!field.is_string() || field.as_string().empty()) return bad(key);
      out.entry = field.as_string();
    } else if (key == "inputs") {
      if (!read_word_list(field, out.inputs)) return bad(key);
    } else if (key == "exploit_inputs") {
      if (!read_word_list(field, out.exploit_inputs)) return bad(key);
    } else if (key == "detector") {
      if (!field.is_string()) return bad(key);
      const std::string& name = field.as_string();
      if (name == "tsan") {
        out.detector = core::DetectorKind::kTsan;
      } else if (name == "ski") {
        out.detector = core::DetectorKind::kSki;
      } else if (name == "atomicity") {
        out.detector = core::DetectorKind::kAtomicity;
      } else {
        return bad(key);
      }
    } else if (key == "detector_impl") {
      if (!field.is_string()) return bad(key);
      const std::string& name = field.as_string();
      if (name == "fast") {
        out.detector_impl = race::DetectorImpl::kFast;
      } else if (name == "reference") {
        out.detector_impl = race::DetectorImpl::kReference;
      } else {
        return bad(key);
      }
    } else if (key == "prescreen") {
      if (!field.is_string() ||
          !race::parse_prescreen_mode(field.as_string(), out.prescreen)) {
        return bad(key);
      }
    } else if (key == "predict") {
      if (!field.is_string() ||
          !race::parse_predict_mode(field.as_string(), out.predict)) {
        return bad(key);
      }
    } else if (key == "vuln_flow") {
      if (!field.is_string() ||
          !analysis::parse_value_flow_mode(field.as_string(),
                                           out.vuln_flow)) {
        return bad(key);
      }
    } else if (key == "schedules") {
      std::uint64_t n = 0;
      if (!read_uint(field, n) || n == 0 || n > 1u << 20) return bad(key);
      out.schedules = static_cast<unsigned>(n);
    } else if (key == "seed") {
      if (!field.is_int()) return bad(key);
      out.seed = static_cast<std::uint64_t>(field.as_int());
    } else if (key == "max_steps") {
      std::uint64_t n = 0;
      if (!read_uint(field, n) || n == 0) return bad(key);
      out.max_steps = n;
    } else if (key == "adhoc") {
      if (!field.is_bool()) return bad(key);
      out.adhoc = field.as_bool();
    } else if (key == "race_verifier") {
      if (!field.is_bool()) return bad(key);
      out.race_verifier = field.as_bool();
    } else if (key == "vuln_verifier") {
      if (!field.is_bool()) return bad(key);
      out.vuln_verifier = field.as_bool();
    } else if (key == "whole_program") {
      if (!field.is_bool()) return bad(key);
      out.whole_program = field.as_bool();
    } else if (key == "print_module") {
      if (!field.is_bool()) return bad(key);
      out.print_module = field.as_bool();
    } else if (key == "print_reports") {
      if (!field.is_bool()) return bad(key);
      out.print_reports = field.as_bool();
    } else if (key == "quiet") {
      if (!field.is_bool()) return bad(key);
      out.quiet = field.as_bool();
    } else if (key == "stage_deadline") {
      if (!field.is_number() || field.as_double() < 0) return bad(key);
      out.stage_deadline = field.as_double();
    } else if (key == "retries") {
      std::uint64_t n = 0;
      if (!read_uint(field, n) || n > 1000) return bad(key);
      out.retries = static_cast<unsigned>(n);
    } else if (key == "jobs") {
      std::uint64_t n = 0;
      if (!read_uint(field, n) || n > 256) return bad(key);
      out.jobs = static_cast<unsigned>(n);
    } else if (key == "checkers") {
      std::string checker_error;
      if (!field.is_string() ||
          !checkers::CheckerOptions::parse(field.as_string(), out.checkers,
                                           checker_error)) {
        return bad(key);
      }
    } else if (key == "sarif") {
      if (!field.is_bool()) return bad(key);
      out.sarif = field.as_bool();
    } else if (key == "repair") {
      if (!field.is_bool()) return bad(key);
      out.repair = field.as_bool();
    } else {
      // Strict: an ignored option would silently answer for the wrong
      // owl_cli invocation.
      error = "unknown option \"" + key + "\"";
      return false;
    }
  }
  return true;
}

std::string AnalysisOptions::canonical_blob(
    const std::string& target_name) const {
  // v5: the blob gained vuln_flow= (v4 repair=, v3 predict=, v2
  // checkers=/sarif=) — the marker bump makes keys from older daemons
  // differ even for flow-off requests.
  std::string out = "owl-options-v5\n";
  out += "name=" + target_name + "\n";
  out += "entry=" + entry + "\n";
  out += "inputs=" + words_csv(inputs) + "\n";
  out += "exploit_inputs=" + words_csv(exploit_inputs) + "\n";
  out += "detector=";
  out += core::detector_kind_name(detector);
  out += "\n";
  out += "detector_impl=";
  out += detector_impl == race::DetectorImpl::kFast ? "fast" : "reference";
  out += "\n";
  out += "prescreen=";
  out += race::prescreen_mode_name(prescreen);
  out += "\n";
  out += "predict=";
  out += race::predict_mode_name(predict);
  out += "\n";
  out += "vuln_flow=";
  out += analysis::value_flow_mode_name(vuln_flow);
  out += "\n";
  out += str_format("schedules=%u\n", schedules);
  out += str_format("seed=%llu\n", static_cast<unsigned long long>(seed));
  out += str_format("max_steps=%llu\n",
                    static_cast<unsigned long long>(max_steps));
  out += str_format("adhoc=%d\n", adhoc ? 1 : 0);
  out += str_format("race_verifier=%d\n", race_verifier ? 1 : 0);
  out += str_format("vuln_verifier=%d\n", vuln_verifier ? 1 : 0);
  out += str_format("whole_program=%d\n", whole_program ? 1 : 0);
  out += str_format("print_module=%d\n", print_module ? 1 : 0);
  out += str_format("print_reports=%d\n", print_reports ? 1 : 0);
  out += str_format("quiet=%d\n", quiet ? 1 : 0);
  out += str_format("stage_deadline=%.6f\n", stage_deadline);
  out += str_format("retries=%u\n", retries);
  // NOTE: jobs is deliberately part of the blob even though responses are
  // byte-identical across jobs values — the equivalence is a *property the
  // differential gate proves*, not an assumption the cache bakes in. Two
  // keys that collapse only if the property holds would make a determinism
  // bug unobservable.
  out += str_format("jobs=%u\n", jobs);
  out += "checkers=" + checkers.canonical() + "\n";
  out += str_format("sarif=%d\n", sarif ? 1 : 0);
  out += str_format("repair=%d\n", repair ? 1 : 0);
  return out;
}

Status parse_request(std::string_view line, Request& out) {
  JsonValue root;
  std::string error;
  if (!JsonValue::parse(line, root, error)) {
    return parse_error("request is not valid JSON: " + error);
  }
  if (!root.is_object()) {
    return invalid_argument_error("request must be a JSON object");
  }
  out = Request();
  const JsonValue* options_value = nullptr;
  for (const auto& [key, field] : root.as_object()) {
    if (key == "op") {
      if (!field.is_string()) {
        return invalid_argument_error("\"op\" must be a string");
      }
      const std::string& op = field.as_string();
      if (op == "analyze") {
        out.op = Request::Op::kAnalyze;
      } else if (op == "ping") {
        out.op = Request::Op::kPing;
      } else if (op == "stats") {
        out.op = Request::Op::kStats;
      } else if (op == "shutdown") {
        out.op = Request::Op::kShutdown;
      } else {
        return invalid_argument_error("unknown op \"" + op + "\"");
      }
    } else if (key == "id") {
      if (!field.is_string()) {
        return invalid_argument_error("\"id\" must be a string");
      }
      out.id = field.as_string();
    } else if (key == "client") {
      if (!field.is_string()) {
        return invalid_argument_error("\"client\" must be a string");
      }
      out.client = field.as_string();
    } else if (key == "module_path") {
      if (!field.is_string() || field.as_string().empty()) {
        return invalid_argument_error("\"module_path\" must be a non-empty string");
      }
      out.module_path = field.as_string();
    } else if (key == "module_text") {
      if (!field.is_string()) {
        return invalid_argument_error("\"module_text\" must be a string");
      }
      out.module_text = field.as_string();
    } else if (key == "name") {
      if (!field.is_string()) {
        return invalid_argument_error("\"name\" must be a string");
      }
      out.name = field.as_string();
    } else if (key == "options") {
      options_value = &field;
    } else {
      return invalid_argument_error("unknown request field \"" + key + "\"");
    }
  }
  if (options_value != nullptr) {
    std::string options_error;
    if (!AnalysisOptions::from_json(*options_value, out.options,
                                    options_error)) {
      return invalid_argument_error(options_error);
    }
  }
  if (out.op == Request::Op::kAnalyze) {
    const bool has_path = !out.module_path.empty();
    const bool has_text = root.find("module_text") != nullptr;
    if (has_path == has_text) {
      return invalid_argument_error(
          "analyze requires exactly one of \"module_path\" or "
          "\"module_text\"");
    }
  }
  return Status::ok();
}

std::string serialize_request(const Request& request) {
  const AnalysisOptions& opt = request.options;
  const auto words_json = [](const std::vector<std::int64_t>& words) {
    std::string out = "[";
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(words[i]);
    }
    out += "]";
    return out;
  };
  std::string out = "{\"op\":\"analyze\"";
  out += ",\"id\":" + json_quote(request.id);
  out += ",\"client\":" + json_quote(request.client);
  out += ",\"module_text\":" + json_quote(request.module_text);
  out += ",\"name\":" + json_quote(request.display_name());
  out += ",\"options\":{";
  out += "\"entry\":" + json_quote(opt.entry);
  out += ",\"inputs\":" + words_json(opt.inputs);
  out += ",\"exploit_inputs\":" + words_json(opt.exploit_inputs);
  out += ",\"detector\":" +
         json_quote(core::detector_kind_name(opt.detector));
  out += ",\"detector_impl\":";
  out += opt.detector_impl == race::DetectorImpl::kFast ? "\"fast\""
                                                        : "\"reference\"";
  out += ",\"prescreen\":" +
         json_quote(race::prescreen_mode_name(opt.prescreen));
  out += ",\"predict\":" + json_quote(race::predict_mode_name(opt.predict));
  out += ",\"vuln_flow\":" +
         json_quote(analysis::value_flow_mode_name(opt.vuln_flow));
  out += str_format(",\"schedules\":%u", opt.schedules);
  out += str_format(",\"seed\":%lld", static_cast<long long>(opt.seed));
  out += str_format(",\"max_steps\":%llu",
                    static_cast<unsigned long long>(opt.max_steps));
  const auto flag = [](bool value) { return value ? "true" : "false"; };
  out += std::string(",\"adhoc\":") + flag(opt.adhoc);
  out += std::string(",\"race_verifier\":") + flag(opt.race_verifier);
  out += std::string(",\"vuln_verifier\":") + flag(opt.vuln_verifier);
  out += std::string(",\"whole_program\":") + flag(opt.whole_program);
  out += std::string(",\"print_module\":") + flag(opt.print_module);
  out += std::string(",\"print_reports\":") + flag(opt.print_reports);
  out += std::string(",\"quiet\":") + flag(opt.quiet);
  out += str_format(",\"stage_deadline\":%.6f", opt.stage_deadline);
  out += str_format(",\"retries\":%u", opt.retries);
  out += str_format(",\"jobs\":%u", opt.jobs);
  out += ",\"checkers\":" + json_quote(opt.checkers.canonical());
  out += std::string(",\"sarif\":") + flag(opt.sarif);
  out += std::string(",\"repair\":") + flag(opt.repair);
  out += "}}";
  return out;
}

std::string ok_response(const std::string& id, std::string_view cache,
                        int exit_code, bool degraded,
                        const std::string& manifest_sha,
                        const std::string& output, const std::string& error) {
  std::string out = "{\"id\":" + json_quote(id);
  out += ",\"status\":\"ok\"";
  out += ",\"cache\":" + json_quote(cache);
  out += str_format(",\"exit\":%d", exit_code);
  out += ",\"degraded\":";
  out += degraded ? "true" : "false";
  out += ",\"manifest_sha\":" + json_quote(manifest_sha);
  out += ",\"output\":" + json_quote(output);
  out += ",\"error\":" + json_quote(error);
  out += "}\n";
  return out;
}

std::string rejected_response(const std::string& id, std::string_view reason,
                              unsigned retry_after_ms) {
  std::string out = "{\"id\":" + json_quote(id);
  out += ",\"status\":\"rejected\"";
  out += ",\"reason\":" + json_quote(reason);
  out += str_format(",\"retry_after_ms\":%u", retry_after_ms);
  out += "}\n";
  return out;
}

std::string error_response(const std::string& id, const std::string& reason) {
  std::string out = "{\"id\":" + json_quote(id);
  out += ",\"status\":\"error\"";
  out += ",\"reason\":" + json_quote(reason);
  out += "}\n";
  return out;
}

std::string ping_response() {
  return "{\"status\":\"ok\",\"pong\":true}\n";
}

}  // namespace owl::serve
