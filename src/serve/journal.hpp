// Append-only request journal — the crash-recovery half of the serve layer
// (DESIGN.md §10).
//
// Durability contract: a request is *accepted* the moment its A record
// reaches the journal (an O_APPEND write(2) of one complete line, so the
// bytes are in the kernel before the daemon acks anything — surviving
// kill -9, though not power loss). A C record marks it settled: response
// delivered (or deliberately dropped by fault injection) and any cache
// write finished. On restart, recover() returns every A without a matching
// C — exactly the accepted-but-unsettled requests a hard kill stranded —
// and the server re-executes them into the result cache, so a client that
// retries gets a warm, byte-identical answer instead of a lost request.
//
// Torn-write handling: kill -9 can strand one final partial line (a torn A
// from a write interrupted by the kill). A torn line has no trailing '\n'
// and is ignored by recover(): the request never reached the durability
// point, so the client was never owed an acceptance. Every parseable line
// is covered by the line's own sha over the payload, so a bit-flipped
// journal line is also skipped rather than replayed as a different request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace owl::serve {

/// One accepted-but-unsettled request recovered from the journal.
struct JournalEntry {
  std::string key;           ///< cache key (content address)
  std::string request_line;  ///< original protocol request, resolved form
};

class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if needed) the journal at `path`; "" disables
  /// journaling (accept/complete become no-ops, recover returns nothing).
  bool open(const std::string& path);
  bool enabled() const noexcept { return fd_ >= 0; }
  void close();

  /// Appends the A record for `key`. `request_line` must be a single line
  /// (the protocol's NDJSON form, with the module text resolved inline so
  /// replay does not depend on the filesystem still holding the module).
  bool accepted(const std::string& key, const std::string& request_line);

  /// Appends the C record for `key`.
  bool completed(const std::string& key);

  /// Scans the journal for A records without a matching C. Safe on a
  /// journal torn by kill -9 (partial or corrupt lines are skipped).
  std::vector<JournalEntry> recover();

  /// Truncates the journal to empty — called once every recovered entry
  /// has been settled, and on clean shutdown after the drain.
  bool reset();

  const std::string& path() const noexcept { return path_; }

 private:
  bool append_line(const std::string& line);

  std::string path_;
  int fd_ = -1;
};

}  // namespace owl::serve
