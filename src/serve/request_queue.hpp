// Admission control + bounded work queue for the serve layer — the
// backpressure half of DESIGN.md §10.
//
// Overload policy, in admission order:
//  1. draining? -> shed with "shutting_down" (SIGTERM keeps serving what it
//     already accepted, nothing new);
//  2. the requesting client already holds `max_inflight_per_client` slots?
//     -> shed with "client_inflight_exceeded" (one chatty client cannot
//     monopolize the queue);
//  3. queue at capacity? -> shed with "queue_full".
// Shedding is always a structured rejection carrying retry_after_ms; the
// daemon never blocks a reader thread on a full queue and never drops a
// request silently.
//
// A slot is held from successful admit() until release() after the
// response is settled — i.e. the bound covers queued AND executing work,
// so capacity is a true limit on daemon memory, not just queue length.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace owl::serve {

/// Why admit() refused (values are the wire `reason` strings).
enum class ShedReason { kQueueFull, kClientInflight, kShuttingDown };

std::string_view shed_reason_name(ShedReason reason) noexcept;

template <typename Work>
class RequestQueue {
 public:
  RequestQueue(std::size_t capacity, std::size_t max_inflight_per_client)
      : capacity_(capacity == 0 ? 1 : capacity),
        per_client_cap_(max_inflight_per_client == 0
                            ? capacity_
                            : max_inflight_per_client) {}

  /// Reserves a slot for `client`. On refusal returns the shed reason.
  std::optional<ShedReason> admit(const std::string& client) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return ShedReason::kShuttingDown;
    auto [it, inserted] = inflight_.try_emplace(client, 0);
    if (it->second >= per_client_cap_) {
      if (inserted) inflight_.erase(it);
      return ShedReason::kClientInflight;
    }
    if (held_ >= capacity_) {
      if (inserted) inflight_.erase(it);
      return ShedReason::kQueueFull;
    }
    ++held_;
    ++it->second;
    return std::nullopt;
  }

  /// Frees the slot admit() reserved for `client` (response settled, or
  /// the enqueue itself failed).
  void release(const std::string& client) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (held_ > 0) --held_;
    const auto it = inflight_.find(client);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
    drained_.notify_all();
  }

  /// Queues admitted work for the executor. The caller must hold a slot.
  void push(Work work) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(work));
    }
    ready_.notify_one();
  }

  /// Blocks for the next work item; std::nullopt once stop() was called
  /// AND the queue is empty (the drain guarantee: stop never discards
  /// admitted work).
  std::optional<Work> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    Work work = std::move(queue_.front());
    queue_.pop_front();
    return work;
  }

  /// Stops admission (admit() sheds with kShuttingDown). Queued work keeps
  /// flowing to pop().
  void begin_drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }

  /// Wakes pop() once the queue empties; pairs with begin_drain().
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
  }

  /// Blocks until every held slot was released (all admitted work settled).
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return held_ == 0; });
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t held() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return held_;
  }

 private:
  const std::size_t capacity_;
  const std::size_t per_client_cap_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable drained_;
  std::deque<Work> queue_;
  std::map<std::string, std::size_t> inflight_;
  std::size_t held_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
};

}  // namespace owl::serve
