#include "serve/service_core.hpp"

#include <chrono>
#include <cstdio>

#include "support/strings.hpp"

namespace owl::serve {
namespace {

using support::PipelineStage;

/// Flips one payload byte of a stored cache entry in place — the
/// kCorruptedData(cache-write) effect. The next load must detect the
/// mismatch against the embedded sha, evict, and recompute.
void corrupt_entry_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return;
  // Flip a byte well past the header so the line "owl-cache-v1 ..." still
  // parses and the damage is caught by the integrity sha, not by accident.
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size > 0) {
    const long at = size / 2;
    std::fseek(file, at, SEEK_SET);
    const int byte = std::fgetc(file);
    if (byte != EOF) {
      std::fseek(file, at, SEEK_SET);
      std::fputc(byte ^ 0x01, file);
    }
  }
  std::fclose(file);
}

}  // namespace

ServiceCore::ServiceCore(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_max_entries),
      journal_(),
      executor_(config_.pipeline_faults),
      queue_(config_.queue_depth, config_.max_inflight_per_client) {
  journal_.open(config_.journal_path);
}

ServiceCore::~ServiceCore() {
  if (started_) shutdown();
}

void ServiceCore::fault_hang(PipelineStage phase) {
  bool hang = false;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    hang = config_.service_faults != nullptr &&
           config_.service_faults->should_hang_at(phase);
  }
  if (hang) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kServiceHangMs));
  }
}

void ServiceCore::fault_throw(PipelineStage phase) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (config_.service_faults != nullptr) {
    config_.service_faults->maybe_throw_at(phase);
  }
}

bool ServiceCore::fault_corrupt(PipelineStage phase) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return config_.service_faults != nullptr &&
         config_.service_faults->should_corrupt_at(phase);
}

std::size_t ServiceCore::recover_journal() {
  std::size_t count = 0;
  for (const JournalEntry& item : journal_.recover()) {
    Request request;
    if (!parse_request(item.request_line, request).is_ok()) continue;
    if (request.op != Request::Op::kAnalyze || request.module_text.empty()) {
      continue;
    }
    PendingWork work;
    work.id = request.id;
    work.client = request.client;
    work.display_name = request.display_name();
    work.module_text = request.module_text;
    work.options = request.options;
    // The key is recomputed from content, not trusted from the record —
    // replay settles into the same address a fresh request would hit.
    work.key = ResultCache::key_for(
        work.module_text, work.options.canonical_blob(work.display_name));
    process(std::move(work), /*replay=*/true);
    ++replayed_;
    ++count;
  }
  // Every survivor is now a verified cache entry (or was unparseable and
  // owed nothing); start the new incarnation with an empty journal.
  journal_.reset();
  journal_pending_.store(0);
  return count;
}

void ServiceCore::start() {
  started_ = true;
  worker_ = std::thread([this] {
    while (std::optional<PendingWork> work = queue_.pop()) {
      process(std::move(*work), /*replay=*/false);
    }
  });
}

ServiceCore::LineOutcome ServiceCore::handle_line(
    const std::string& line, const std::string& fallback_client,
    Respond respond) {
  Request request;
  if (const Status status = parse_request(line, request); !status.is_ok()) {
    ++request_errors_;
    if (respond) respond(error_response(request.id, status.to_string()));
    return LineOutcome::kContinue;
  }
  switch (request.op) {
    case Request::Op::kPing:
      if (respond) respond(ping_response());
      return LineOutcome::kContinue;
    case Request::Op::kStats:
      if (respond) respond(stats_response());
      return LineOutcome::kContinue;
    case Request::Op::kShutdown:
      if (respond) {
        respond("{\"status\":\"ok\",\"shutting_down\":true}\n");
      }
      return LineOutcome::kShutdownRequested;
    case Request::Op::kAnalyze:
      break;
  }

  try {
    fault_hang(PipelineStage::kServeAdmit);
    fault_throw(PipelineStage::kServeAdmit);
  } catch (const support::InjectedFault& fault) {
    ++request_errors_;
    if (respond) respond(error_response(request.id, fault.what()));
    return LineOutcome::kContinue;
  }

  std::string module_text;
  if (!request.module_path.empty()) {
    std::string error;
    if (!read_module_file(request.module_path, module_text, error)) {
      ++request_errors_;
      if (!error.empty() && error.back() == '\n') error.pop_back();
      if (respond) respond(error_response(request.id, error));
      return LineOutcome::kContinue;
    }
  } else {
    module_text = request.module_text;
  }

  const std::string client =
      request.client.empty() ? fallback_client : request.client;
  if (const std::optional<ShedReason> shed = queue_.admit(client)) {
    switch (*shed) {
      case ShedReason::kQueueFull: ++shed_queue_full_; break;
      case ShedReason::kClientInflight: ++shed_client_inflight_; break;
      case ShedReason::kShuttingDown: ++shed_shutting_down_; break;
    }
    if (respond) {
      respond(rejected_response(request.id, shed_reason_name(*shed),
                                config_.retry_after_ms));
    }
    return LineOutcome::kContinue;
  }

  PendingWork work;
  work.id = request.id;
  work.client = client;
  work.display_name = request.display_name();
  work.module_text = std::move(module_text);
  work.options = request.options;
  work.key = ResultCache::key_for(
      work.module_text, work.options.canonical_blob(work.display_name));
  work.respond = std::move(respond);

  // Durability point: once the A record is on disk the request is owed a
  // settled outcome — by this incarnation or, after a hard kill, by the
  // next one's recover_journal().
  if (journal_.enabled()) {
    Request resolved = request;
    resolved.client = client;
    resolved.module_text = work.module_text;
    resolved.name = work.display_name;
    resolved.module_path.clear();
    if (journal_.accepted(work.key, serialize_request(resolved))) {
      ++journal_pending_;
    }
  }
  ++accepted_;

  try {
    fault_hang(PipelineStage::kServeEnqueue);
    fault_throw(PipelineStage::kServeEnqueue);
  } catch (const support::InjectedFault& fault) {
    ++request_errors_;
    if (work.respond) {
      work.respond(error_response(work.id, fault.what()));
    }
    settle(work.key, work.client, /*replay=*/false);
    return LineOutcome::kContinue;
  }
  queue_.push(std::move(work));
  return LineOutcome::kContinue;
}

void ServiceCore::journal_completed(const std::string& key) {
  if (!journal_.enabled()) return;
  if (journal_.completed(key)) {
    // Saturating: replay/reset can race a decrement only in tests that
    // drive the core directly; never below zero.
    std::uint64_t pending = journal_pending_.load();
    while (pending != 0 &&
           !journal_pending_.compare_exchange_weak(pending, pending - 1)) {
    }
  }
}

void ServiceCore::settle(const std::string& key, const std::string& client,
                         bool replay) {
  journal_completed(key);
  if (!replay) queue_.release(client);
}

void ServiceCore::process(PendingWork work, bool replay) {
  // --- cache read ---
  try {
    fault_hang(PipelineStage::kServeCacheRead);
    if (fault_corrupt(PipelineStage::kServeCacheRead)) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      cache_.evict(work.key);
    }
    fault_throw(PipelineStage::kServeCacheRead);
  } catch (const support::InjectedFault& fault) {
    ++request_errors_;
    if (work.respond) {
      work.respond(error_response(work.id, fault.what()));
    }
    settle(work.key, work.client, replay);
    return;
  }
  CacheEntry entry;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    hit = cache_.load(work.key, entry);
  }
  const std::string_view cache_label =
      cache_.enabled() ? (hit ? "hit" : "miss") : "off";

  // --- execute on miss ---
  std::string error_text;
  if (!hit) {
    ExecResult exec =
        executor_.run(work.module_text, work.display_name, work.options);
    entry.exit_code = exec.exit_code;
    entry.degraded = exec.degraded;
    entry.output = std::move(exec.output);
    entry.manifest = std::move(exec.manifest);
    entry.content_sha = cache_content_sha(entry);
    error_text = std::move(exec.error);

    // --- cache write ---
    // Only clean pipeline runs are cacheable: load/verify failures and
    // audit exits carry stderr text the entry does not model, and they are
    // cheap to recompute. A cache-write fault degrades to uncached — the
    // response below is unaffected.
    const bool cacheable = exec.ran_pipeline && error_text.empty();
    try {
      fault_hang(PipelineStage::kServeCacheWrite);
      fault_throw(PipelineStage::kServeCacheWrite);
      if (cacheable) {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        if (cache_.store(work.key, entry) &&
            fault_corrupt(PipelineStage::kServeCacheWrite)) {
          corrupt_entry_file(cache_.entry_path(work.key));
        }
      }
    } catch (const support::InjectedFault&) {
      // Degraded to uncached; deliberately not an error.
    }
  }

  // --- respond ---
  try {
    fault_hang(PipelineStage::kServeRespond);
    fault_throw(PipelineStage::kServeRespond);
  } catch (const support::InjectedFault&) {
    // To the client this is a daemon death mid-reply. Withhold the C
    // record: the next incarnation's recover_journal() owes them a warm,
    // byte-identical retry.
    ++dropped_responses_;
    if (!replay) queue_.release(work.client);
    return;
  }
  if (work.respond) {
    work.respond(ok_response(work.id, cache_label, entry.exit_code,
                             entry.degraded, entry.content_sha, entry.output,
                             error_text));
  }
  ++completed_;
  settle(work.key, work.client, replay);
}

void ServiceCore::begin_drain() { queue_.begin_drain(); }

void ServiceCore::shutdown() {
  begin_drain();
  queue_.wait_idle();  // every admitted request settled
  queue_.stop();
  if (worker_.joinable()) worker_.join();
  started_ = false;
  // A dropped response (respond fault) keeps its A record for the next
  // boot; otherwise the clean drain leaves nothing owed.
  if (journal_pending_.load() == 0) journal_.reset();
}

std::string ServiceCore::stats_response() const {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stores = 0;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    hits = cache_.hits();
    misses = cache_.misses();
    evictions = cache_.evictions();
    stores = cache_.stores();
  }
  const auto u = [](std::uint64_t value) {
    return static_cast<unsigned long long>(value);
  };
  return str_format(
      "{\"status\":\"ok\",\"stats\":{"
      "\"accepted\":%llu,\"completed\":%llu,"
      "\"shed\":{\"queue_full\":%llu,\"client_inflight\":%llu,"
      "\"shutting_down\":%llu},"
      "\"errors\":%llu,\"dropped_responses\":%llu,\"replayed\":%llu,"
      "\"cache\":{\"enabled\":%s,\"hits\":%llu,\"misses\":%llu,"
      "\"evictions\":%llu,\"stores\":%llu},"
      "\"queue\":{\"capacity\":%zu,\"held\":%zu},"
      "\"journal\":{\"enabled\":%s,\"pending\":%llu}}}\n",
      u(accepted_.load()), u(completed_.load()), u(shed_queue_full_.load()),
      u(shed_client_inflight_.load()), u(shed_shutting_down_.load()),
      u(request_errors_.load()), u(dropped_responses_.load()),
      u(replayed_.load()), cache_.enabled() ? "true" : "false", u(hits),
      u(misses), u(evictions), u(stores), queue_.capacity(), queue_.held(),
      journal_.enabled() ? "true" : "false", u(journal_pending_.load()));
}

}  // namespace owl::serve
