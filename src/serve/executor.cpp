#include "serve/executor.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "checkers/sarif.hpp"
#include "core/manifest.hpp"
#include "core/render.hpp"
#include "interp/machine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace owl::serve {
namespace {

std::vector<interp::Word> to_words(const std::vector<std::int64_t>& values) {
  return std::vector<interp::Word>(values.begin(), values.end());
}

}  // namespace

bool read_module_file(const std::string& path, std::string& text,
                      std::string& error) {
  std::ifstream file(path);
  if (!file) {
    error = str_format("owl_cli: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  text = buffer.str();
  return true;
}

ExecResult Executor::run(const std::string& module_text,
                         const std::string& display_name,
                         const AnalysisOptions& options) {
  ExecResult result;
  // Fresh-process equivalence: zero the registry so this request's
  // metrics (and the audit exit decision below) see only themselves.
  support::metrics().reset();

  auto parsed = ir::parse_module(module_text);
  if (!parsed.is_ok()) {
    result.exit_code = 1;
    result.error = str_format("owl_cli: %s: %s\n", display_name.c_str(),
                              parsed.status().to_string().c_str());
    return result;
  }
  std::shared_ptr<ir::Module> module = std::move(parsed).value();
  if (const Status status = ir::verify_module(*module); !status.is_ok()) {
    result.exit_code = 2;
    result.error = str_format("owl_cli: %s: %s\n", display_name.c_str(),
                              status.to_string().c_str());
    return result;
  }
  const ir::Function* entry = module->find_function(options.entry);
  if (entry == nullptr || !entry->has_body()) {
    result.exit_code = 1;
    result.error = str_format("owl_cli: %s: no entry function @%s\n",
                              display_name.c_str(), options.entry.c_str());
    return result;
  }
  if (options.print_module) {
    result.output += ir::print_module(*module);
  }

  const std::vector<interp::Word> inputs = to_words(options.inputs);
  const std::vector<interp::Word> exploit_inputs =
      options.exploit_inputs.empty() ? inputs
                                     : to_words(options.exploit_inputs);
  const auto factory_for = [&](std::vector<interp::Word> run_inputs) {
    return race::MachineFactory(
        [module, entry, run_inputs, max_steps = options.max_steps] {
          interp::MachineOptions machine_options;
          machine_options.inputs = run_inputs;
          machine_options.max_steps = max_steps;
          auto machine =
              std::make_unique<interp::Machine>(*module, machine_options);
          machine->start(entry);
          return machine;
        });
  };

  core::PipelineTarget target;
  target.name = display_name;
  target.module = module.get();
  target.factory = factory_for(inputs);
  target.exploit_factory = factory_for(exploit_inputs);
  // Module-agnostic factory for the repair engine's verification re-runs
  // on patched clones — same wiring as owl_cli, so responses stay
  // byte-identical to the one-shot invocation.
  target.factory_for_module = [entry_name = options.entry, inputs,
                               max_steps = options.max_steps](
                                  std::shared_ptr<const ir::Module> patched) {
    return race::MachineFactory([patched, entry_name, inputs, max_steps] {
      interp::MachineOptions machine_options;
      machine_options.inputs = inputs;
      machine_options.max_steps = max_steps;
      auto machine =
          std::make_unique<interp::Machine>(*patched, machine_options);
      machine->start(patched->find_function(entry_name));
      return machine;
    });
  };
  target.detector = options.detector;
  target.detection_schedules = options.schedules;
  target.seed = options.seed;  // single target: --seed kept exactly

  core::PipelineOptions pipeline_options;
  pipeline_options.enable_adhoc_annotation = options.adhoc;
  pipeline_options.enable_race_verifier = options.race_verifier;
  pipeline_options.enable_vuln_verifier = options.vuln_verifier;
  pipeline_options.analyzer_mode =
      options.whole_program ? vuln::VulnerabilityAnalyzer::Mode::kWholeProgram
                            : vuln::VulnerabilityAnalyzer::Mode::kDirected;
  if (options.stage_deadline > 0) {
    pipeline_options.stage_budgets =
        core::StageBudgets::uniform_wall(options.stage_deadline);
  }
  pipeline_options.retry.max_retries = options.retries;
  pipeline_options.detector_impl = options.detector_impl;
  pipeline_options.prescreen = options.prescreen;
  pipeline_options.predict = options.predict;
  pipeline_options.vuln_flow = options.vuln_flow;
  pipeline_options.checkers = options.checkers;
  pipeline_options.repair.enabled = options.repair;  // out_dir stays empty
  pipeline_options.manifest_tool = "owl_cli";
  if (pipeline_faults_ != nullptr && !pipeline_faults_->empty()) {
    pipeline_options.fault_injector = pipeline_faults_;
  }

  // Single target: jobs buys verifier schedule sharding, exactly as
  // owl_cli wires it (run_many itself stays sequential).
  pipeline_options.jobs = 1;
  std::unique_ptr<support::ThreadPool> pool;
  if (options.jobs > 1) {
    pool = std::make_unique<support::ThreadPool>(options.jobs);
    pipeline_options.verifier_pool = pool.get();
  }

  const std::vector<core::PipelineTarget> targets = [&] {
    std::vector<core::PipelineTarget> out;
    out.push_back(std::move(target));
    return out;
  }();
  const std::vector<core::PipelineResult> results =
      core::Pipeline(pipeline_options).run_many(targets);

  result.ran_pipeline = true;
  for (const core::PipelineResult& pipeline_result : results) {
    result.output += core::render_cli_summary(pipeline_result);
    result.degraded = result.degraded || pipeline_result.degraded();
  }
  for (const core::PipelineResult& pipeline_result : results) {
    if (options.quiet) break;
    result.output +=
        core::render_cli_details(pipeline_result, options.print_reports);
  }
  if (options.sarif) {
    // Mirrors `owl_cli --sarif-out -`: the log is appended to the output
    // after the details, so responses stay byte-identical to the one-shot
    // invocation (and SARIF rides the result cache for free).
    std::vector<checkers::SarifTarget> sarif_targets;
    sarif_targets.reserve(results.size());
    for (const core::PipelineResult& pipeline_result : results) {
      sarif_targets.push_back(checkers::SarifTarget{
          pipeline_result.target_name, &pipeline_result.checker_findings});
    }
    result.output += checkers::render_sarif(sarif_targets);
  }
  // The manifest body is the provenance record the cache seals into the
  // entry. Tool label "owl_cli": the manifest documents the canonical
  // one-shot invocation this response is byte-identical to, and keeping
  // the label lets serve_check diff it against `owl_cli --manifest`.
  result.manifest = core::strip_manifest_environment(
      core::render_manifest("owl_cli", pipeline_options, targets, results));

  if (options.prescreen == race::PrescreenMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("prescreen.audit_violations").value();
    if (violations != 0) {
      result.error += str_format(
          "owl_cli: prescreen audit: %llu pruned-but-raced "
          "access(es) falsify the static no-race verdict\n",
          static_cast<unsigned long long>(violations));
      result.exit_code = 3;
    }
  }
  if (options.predict == race::PredictMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("predict.audit_violations").value();
    if (violations != 0) {
      result.error += str_format(
          "owl_cli: predict audit: %llu verified race(s) the "
          "SP-closure wrongly called infeasible\n",
          static_cast<unsigned long long>(violations));
      result.exit_code = 3;
    }
  }
  if (options.vuln_flow == analysis::ValueFlowMode::kAudit) {
    const std::uint64_t violations =
        support::metrics().advisory("vulnflow.audit_violations").value();
    if (violations != 0) {
      result.error += str_format(
          "owl_cli: vuln-flow audit: %llu runtime store->load "
          "dependence(s) missing from the static value-flow graph\n",
          static_cast<unsigned long long>(violations));
      result.exit_code = 3;
    }
  }
  return result;
}

}  // namespace owl::serve
