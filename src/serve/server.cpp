#include "serve/server.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.hpp"

namespace owl::serve {

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServiceCore& core, std::string socket_path)
    : core_(core), socket_path_(std::move(socket_path)) {
  if (::pipe(shutdown_pipe_) != 0) {
    shutdown_pipe_[0] = shutdown_pipe_[1] = -1;
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
  for (int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  // Reader threads still running here mean run() was never reached or was
  // abandoned; join so destruction is safe regardless.
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
}

bool Server::start(std::string& error) {
  if (socket_path_.empty()) {
    error = "socket path is empty";
    return false;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(address.sun_path)) {
    error = "socket path too long: " + socket_path_;
    return false;
  }
  std::memcpy(address.sun_path, socket_path_.c_str(),
              socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error = str_format("socket(): %s", std::strerror(errno));
    return false;
  }
  ::unlink(socket_path_.c_str());  // stale socket from a killed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    error = str_format("bind(%s): %s", socket_path_.c_str(),
                       std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error = str_format("listen(%s): %s", socket_path_.c_str(),
                       std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void Server::request_shutdown() {
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(shutdown_pipe_[1], &byte, 1);
  }
}

void Server::write_line(Connection& conn, const std::string& text) {
  // Serialized per connection: the executor thread delivers analyze
  // responses while the reader thread answers pings on the same fd.
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  std::size_t offset = 0;
  while (offset < text.size()) {
    const ssize_t n = ::send(conn.fd, text.data() + offset,
                             text.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EPIPE & friends: the client left; the daemon shrugs
    }
    offset += static_cast<std::size_t>(n);
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::string client_id) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed (or drain() shut the socket down)
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.find('\n') == std::string::npos &&
        buffer.size() > kMaxLineBytes) {
      write_line(*conn, error_response("", "request line too large"));
      break;
    }
    std::size_t start = 0;
    std::size_t newline = 0;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      const std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      const ServiceCore::LineOutcome outcome = core_.handle_line(
          line, client_id,
          [conn](const std::string& text) { write_line(*conn, text); });
      if (outcome == ServiceCore::LineOutcome::kShutdownRequested) {
        request_shutdown();
      }
    }
    buffer.erase(0, start);
  }
}

int Server::run(int wake_fd) {
  for (;;) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {listen_fd_, POLLIN, 0};
    fds[count++] = {shutdown_pipe_[0], POLLIN, 0};
    if (wake_fd >= 0) fds[count++] = {wake_fd, POLLIN, 0};
    const int ready = ::poll(fds, count, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool wake = false;
    for (nfds_t i = 1; i < count; ++i) {
      if (fds[i].revents != 0) wake = true;
    }
    if (wake) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = client_fd;
    std::string client_id;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      client_id = str_format("conn-%llu",
                             static_cast<unsigned long long>(next_client_++));
      connections_.push_back(conn);
      readers_.emplace_back([this, conn, client_id] {
        reader_loop(conn, client_id);
      });
    }
  }
  drain();
  return 0;
}

void Server::drain() {
  // 1. Stop accepting: close the listener and remove the socket so new
  //    clients fail fast instead of queueing behind a dying daemon.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
  // 2. Stop admitting: lines still arriving on live connections shed with
  //    "shutting_down"; everything already admitted keeps its slot.
  core_.begin_drain();
  // 3. Drain: blocks until every admitted request's response was handed to
  //    write_line() and the executor thread exited.
  core_.shutdown();
  // 4. Unblock readers (their read() returns 0) and join them.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
}

}  // namespace owl::serve
