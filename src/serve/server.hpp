// Unix-domain socket transport for ServiceCore (DESIGN.md §10).
//
// One listener, one reader thread per connection, newline-delimited JSON
// both ways. The transport owns exactly the I/O concerns: framing lines,
// serializing concurrent writes to one connection (analyze responses come
// from the executor thread while the reader thread answers pings), EPIPE
// tolerance (a vanished client never kills the daemon), and the shutdown
// choreography — on SIGTERM (or a "shutdown" op) the listener closes, the
// core drains every admitted request to a delivered response, reader
// threads are unblocked and joined, and run() returns 0.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service_core.hpp"

namespace owl::serve {

/// A request line larger than this is a protocol error (the connection is
/// answered with a structured error and closed) — bounds reader memory.
inline constexpr std::size_t kMaxLineBytes = 8u << 20;

class Server {
 public:
  Server(ServiceCore& core, std::string socket_path);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the socket path (unlinking any stale socket).
  /// False + `error` on failure.
  bool start(std::string& error);

  /// Accept loop. Returns 0 after a clean drain. `wake_fd` (may be -1) is
  /// the caller's shutdown signal — typically the read end of a signal
  /// self-pipe; one readable byte triggers the drain. A "shutdown" op does
  /// the same through an internal pipe.
  int run(int wake_fd);

  /// Thread-safe shutdown trigger (what the "shutdown" op calls).
  void request_shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    ~Connection();
  };

  void reader_loop(std::shared_ptr<Connection> conn, std::string client_id);
  static void write_line(Connection& conn, const std::string& text);
  void drain();

  ServiceCore& core_;
  std::string socket_path_;
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  std::uint64_t next_client_ = 0;
};

}  // namespace owl::serve
