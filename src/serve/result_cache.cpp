#include "serve/result_cache.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace owl::serve {
namespace {

/// Reads a whole file; false if it cannot be opened or read.
bool read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out.clear();
  char buffer[1 << 16];
  while (true) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (got == 0) break;
    out.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return true;
}

/// Writes `data` to a temp file next to `path`, fsyncs, and renames it
/// into place — the atomic-publish idiom the no-torn-entries invariant
/// rests on.
bool write_file_atomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t put =
        ::write(fd, data.data() + written, data.size() - written);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(put);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

constexpr std::string_view kMagic = "owl-cache-v1";

}  // namespace

std::string cache_content_sha(const CacheEntry& entry) {
  support::Sha256 hash;
  hash.update(kMagic);
  hash.update("\n");
  hash.update(str_format("exit=%d degraded=%d manifest=%zu output=%zu\n",
                         entry.exit_code, entry.degraded ? 1 : 0,
                         entry.manifest.size(), entry.output.size()));
  hash.update(entry.manifest);
  hash.update(entry.output);
  return hash.hex_digest();
}

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  if (dir_.empty()) return;
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; failures surface on use
  // Sweep temp files a killed writer left behind — they were never
  // published, so deleting them cannot lose a committed entry. With a cap
  // set, also seed the recency index from the surviving entries so LRU
  // pressure carries across restarts: oldest mtime evicts first, names
  // break ties so equal-mtime listings stay deterministic.
  std::vector<std::pair<std::pair<std::int64_t, std::string>, std::string>>
      seeded;
  if (DIR* handle = ::opendir(dir_.c_str())) {
    while (dirent* item = ::readdir(handle)) {
      const std::string name = item->d_name;
      if (ends_with(name, ".tmp")) {
        ::unlink((dir_ + "/" + name).c_str());
      } else if (max_entries_ != 0 && ends_with(name, ".entry")) {
        struct stat st = {};
        std::int64_t mtime = 0;
        if (::stat((dir_ + "/" + name).c_str(), &st) == 0) {
          mtime = static_cast<std::int64_t>(st.st_mtime);
        }
        const std::string key = name.substr(0, name.size() - 6);
        seeded.push_back({{mtime, name}, key});
      }
    }
    ::closedir(handle);
  }
  std::sort(seeded.begin(), seeded.end());
  for (auto& [order, key] : seeded) {
    lru_.push_back(key);
    lru_index_.emplace(lru_.back(), std::prev(lru_.end()));
  }
  enforce_cap();
}

void ResultCache::touch(const std::string& key) {
  if (max_entries_ == 0) return;
  if (const auto it = lru_index_.find(key); it != lru_index_.end()) {
    lru_.splice(lru_.end(), lru_, it->second);
  } else {
    lru_.push_back(key);
    lru_index_.emplace(lru_.back(), std::prev(lru_.end()));
  }
}

void ResultCache::enforce_cap() {
  if (max_entries_ == 0) return;
  while (lru_index_.size() > max_entries_) {
    evict(lru_.front());  // also erases the index entry
  }
}

std::string ResultCache::key_for(const std::string& module_text,
                                 const std::string& options_blob) {
  support::Sha256 hash;
  hash.update("owl-cache-key-v1\n");
  hash.update(support::sha256_hex(module_text));
  hash.update("\n");
  hash.update(support::sha256_hex(options_blob));
  hash.update("\n");
  return hash.hex_digest();
}

std::string ResultCache::entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".entry";
}

bool ResultCache::load(const std::string& key, CacheEntry& out) {
  if (!enabled()) {
    ++misses_;
    return false;
  }
  std::string raw;
  if (!read_file(entry_path(key), raw)) {
    ++misses_;
    return false;
  }
  const auto corrupt = [&]() {
    evict(key);
    ++misses_;
    return false;
  };
  // Header: "owl-cache-v1 <exit> <degraded> <manifest_size> <output_size>
  // <sha>\n" followed by manifest bytes then output bytes.
  const std::size_t header_end = raw.find('\n');
  if (header_end == std::string::npos) return corrupt();
  const std::vector<std::string> fields =
      split(raw.substr(0, header_end), ' ');
  if (fields.size() != 6 || fields[0] != kMagic) return corrupt();
  std::int64_t exit_code = 0, degraded = 0, manifest_size = 0, output_size = 0;
  if (!parse_int64(fields[1], exit_code) || !parse_int64(fields[2], degraded) ||
      !parse_int64(fields[3], manifest_size) ||
      !parse_int64(fields[4], output_size) || manifest_size < 0 ||
      output_size < 0 || (degraded != 0 && degraded != 1)) {
    return corrupt();
  }
  const std::size_t body_begin = header_end + 1;
  const std::size_t expected =
      body_begin + static_cast<std::size_t>(manifest_size) +
      static_cast<std::size_t>(output_size);
  if (raw.size() != expected) return corrupt();

  CacheEntry entry;
  entry.exit_code = static_cast<int>(exit_code);
  entry.degraded = degraded != 0;
  entry.manifest =
      raw.substr(body_begin, static_cast<std::size_t>(manifest_size));
  entry.output = raw.substr(body_begin + static_cast<std::size_t>(manifest_size));
  entry.content_sha = fields[5];
  if (cache_content_sha(entry) != entry.content_sha) return corrupt();
  out = std::move(entry);
  ++hits_;
  touch(key);
  return true;
}

bool ResultCache::store(const std::string& key, CacheEntry& entry) {
  entry.content_sha = cache_content_sha(entry);
  if (!enabled()) return false;
  std::string raw = str_format(
      "%s %d %d %zu %zu %s\n", std::string(kMagic).c_str(), entry.exit_code,
      entry.degraded ? 1 : 0, entry.manifest.size(), entry.output.size(),
      entry.content_sha.c_str());
  raw += entry.manifest;
  raw += entry.output;
  if (!write_file_atomic(entry_path(key), raw)) return false;
  ++stores_;
  touch(key);
  enforce_cap();
  return true;
}

void ResultCache::evict(const std::string& key) {
  if (!enabled()) return;
  if (::unlink(entry_path(key).c_str()) == 0) ++evictions_;
  if (const auto it = lru_index_.find(key); it != lru_index_.end()) {
    lru_.erase(it->second);
    lru_index_.erase(it);
  }
}

}  // namespace owl::serve
