#include "interp/context.hpp"

namespace owl::interp {

ContextId ContextTree::push(ContextId parent, const ir::Function* function,
                            const ir::Instruction* call_site) {
  const Key key{parent, function, call_site};
  const auto [it, inserted] =
      intern_.emplace(key, static_cast<ContextId>(nodes_.size()));
  if (inserted) {
    nodes_.push_back(Node{parent, function, call_site});
  }
  return it->second;
}

CallStack ContextTree::call_stack(ContextId leaf,
                                  const ir::Instruction* innermost) const {
  std::size_t depth = 0;
  for (ContextId id = leaf; id != kNoContext; id = nodes_[id].parent) ++depth;

  CallStack stack(depth);
  // Walk leaf-to-root, filling innermost-to-outermost: each frame reports
  // the instruction it is at — the pending instruction for the innermost
  // frame, the callee's call site for every outer frame (the same shape
  // Thread::call_stack() produces).
  const ir::Instruction* instr = innermost;
  for (ContextId id = leaf; id != kNoContext; id = nodes_[id].parent) {
    stack[--depth] = StackEntry{nodes_[id].function, instr};
    instr = nodes_[id].call_site;
  }
  return stack;
}

}  // namespace owl::interp
