#include "interp/machine.hpp"

#include <algorithm>
#include <cassert>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace owl::interp {

namespace {
constexpr std::size_t kMaxSecurityEvents = 10000;
}

std::string_view security_event_kind_name(SecurityEventKind kind) noexcept {
  switch (kind) {
    case SecurityEventKind::kNullPtrDeref: return "null-ptr-deref";
    case SecurityEventKind::kNullFuncPtrDeref: return "null-func-ptr-deref";
    case SecurityEventKind::kArbitraryCodeExec: return "arbitrary-code-exec";
    case SecurityEventKind::kBufferOverflow: return "buffer-overflow";
    case SecurityEventKind::kUseAfterFree: return "use-after-free";
    case SecurityEventKind::kDoubleFree: return "double-free";
    case SecurityEventKind::kOutOfBounds: return "out-of-bounds";
    case SecurityEventKind::kPrivilegeEscalation: return "privilege-escalation";
    case SecurityEventKind::kIntegerUnderflow: return "integer-underflow";
    case SecurityEventKind::kDataLeak: return "data-leak";
    case SecurityEventKind::kDeadlock: return "deadlock";
  }
  return "?";
}

std::string SecurityEvent::to_string() const {
  std::string out(security_event_kind_name(kind));
  out += " [thread " + std::to_string(tid) + "]";
  if (instr != nullptr) {
    out += " at " + instr->summary();
  }
  if (!detail.empty()) {
    out += " — " + detail;
  }
  return out;
}

Machine::Machine(const ir::Module& module, MachineOptions options)
    : module_(&module), options_(std::move(options)) {
  for (const auto& g : module.globals()) {
    global_addr_[g.get()] = memory_.allocate(
        ObjectKind::kGlobal, g->cell_count(), g->initial_value(), g->name());
  }
  for (const auto& f : module.functions()) {
    functions_by_id_[f->id()] = f.get();
  }
}

ThreadId Machine::start(const ir::Function* entry) {
  assert(threads_.empty() && "start() must create the first thread");
  return spawn(entry, 0);
}

ThreadId Machine::spawn(const ir::Function* entry, Word arg) {
  assert(entry != nullptr && entry->has_body());
  const ThreadId tid = static_cast<ThreadId>(threads_.size());
  threads_.push_back(std::make_unique<Thread>(tid, entry));
  Thread& thread = *threads_.back();

  std::vector<Word> args;
  if (!entry->arguments().empty()) args.push_back(arg);
  enter_function(thread, entry, args, /*call_site=*/nullptr);
  unannounced_.push_back(tid);
  return tid;
}

Thread* Machine::thread(ThreadId tid) {
  return tid < threads_.size() ? threads_[tid].get() : nullptr;
}
const Thread* Machine::thread(ThreadId tid) const {
  return tid < threads_.size() ? threads_[tid].get() : nullptr;
}

std::vector<ThreadId> Machine::runnable_threads() const {
  std::vector<ThreadId> out;
  for (const auto& t : threads_) {
    if (t->state() == ThreadState::kRunnable) {
      out.push_back(t->id());
    } else if (t->state() == ThreadState::kSleeping &&
               t->wake_tick <= tick_) {
      out.push_back(t->id());
    }
  }
  return out;
}

Address Machine::global_address(const ir::GlobalVariable* global) const {
  auto it = global_addr_.find(global);
  assert(it != global_addr_.end());
  return it->second;
}

Address Machine::global_address(std::string_view name) const {
  const ir::GlobalVariable* g = module_->find_global(name);
  assert(g != nullptr && "unknown global");
  return global_address(g);
}

Word Machine::read_global(std::string_view name) const {
  return memory_.load_raw(global_address(name));
}

Word Machine::eval_in_thread(ThreadId tid, const ir::Value* value) const {
  const Thread* t = thread(tid);
  if (t == nullptr || t->frames().empty()) return 0;
  return value_of(t->frames().back(), value);
}

const ir::Function* Machine::resolve_function(Word value) const {
  auto it = functions_by_id_.find(static_cast<std::uint64_t>(value));
  return it != functions_by_id_.end() ? it->second : nullptr;
}

Word Machine::function_value(const ir::Function* function) const {
  return static_cast<Word>(function->id());
}

bool Machine::has_event(SecurityEventKind kind) const noexcept {
  return std::any_of(security_events_.begin(), security_events_.end(),
                     [&](const SecurityEvent& e) { return e.kind == kind; });
}

RunResult Machine::run(Scheduler& scheduler) {
  while (true) {
    for (ThreadId tid : unannounced_) scheduler.on_thread_created(tid);
    unannounced_.clear();

    if (steps_ >= options_.max_steps) {
      return {StopReason::kStepBudget, steps_, std::nullopt, 0};
    }

    if (fault_injector_ != nullptr && fault_injector_->should_stall()) {
      // Injected scheduler stall: the step is burned without executing, so
      // a persistent stall deterministically exhausts the step budget —
      // exactly how a pathological schedule looks from the outside.
      ++steps_;
      ++tick_;
      continue;
    }

    std::vector<ThreadId> runnable = runnable_threads();
    if (runnable.empty()) {
      bool all_finished = true;
      bool any_sleeping = false;
      bool any_suspended = false;
      std::uint64_t min_wake = UINT64_MAX;
      for (const auto& t : threads_) {
        if (t->finished()) continue;
        all_finished = false;
        if (t->state() == ThreadState::kSleeping) {
          any_sleeping = true;
          min_wake = std::min(min_wake, t->wake_tick);
        } else if (t->state() == ThreadState::kSuspended) {
          any_suspended = true;
        }
      }
      if (all_finished) {
        return {StopReason::kAllFinished, steps_, std::nullopt, 0};
      }
      if (any_sleeping) {
        tick_ = min_wake;  // fast-forward simulated time to the next wake
        continue;
      }
      if (any_suspended) {
        return {StopReason::kAllSuspended, steps_, std::nullopt, 0};
      }
      // Every live thread is blocked on a lock or join: true deadlock.
      for (const auto& t : threads_) {
        if (!t->finished()) {
          emit_event(SecurityEventKind::kDeadlock, *t, t->next_instruction(),
                     "no runnable thread");
          break;
        }
      }
      return {StopReason::kDeadlock, steps_, std::nullopt, 0};
    }

    const ThreadId tid = scheduler.pick(runnable, steps_);
    Thread& t = *threads_[tid];
    if (t.state() == ThreadState::kSleeping) {
      t.set_state(ThreadState::kRunnable);
    }

    const ir::Instruction* instr = t.next_instruction();
    if (instr == nullptr) {
      finish_thread(t);
      continue;
    }

    const bool honor_skip =
        t.skip_breakpoint_once &&
        (fault_injector_ == nullptr ||
         !fault_injector_->livelock_breakpoints());
    if (debugger_ != nullptr && !honor_skip) {
      if (Breakpoint* bp = debugger_->match(tid, instr)) {
        // With an injected breakpoint livelock the skip-once release is
        // ignored: the thread re-suspends with zero progress, which is the
        // verifier-session livelock the stage watchdogs must break.
        t.set_state(ThreadState::kSuspended);
        return {StopReason::kBreakpoint, steps_, tid, bp->id};
      }
    }

    execute(t);
    ++steps_;
    ++tick_;
  }
}

Status Machine::step_thread(ThreadId tid) {
  Thread* t = thread(tid);
  if (t == nullptr) return invalid_argument_error("no such thread");
  if (t->finished()) return failed_precondition_error("thread finished");
  if (t->state() == ThreadState::kSuspended) {
    t->set_state(ThreadState::kRunnable);
  }
  if (t->state() != ThreadState::kRunnable &&
      t->state() != ThreadState::kSleeping) {
    return failed_precondition_error(
        "thread is " + std::string(thread_state_name(t->state())));
  }
  if (t->next_instruction() == nullptr) {
    finish_thread(*t);
    return Status::ok();
  }
  execute(*t);
  ++steps_;
  ++tick_;
  return Status::ok();
}

Status Machine::resume_thread(ThreadId tid, bool skip_breakpoint_once) {
  Thread* t = thread(tid);
  if (t == nullptr) return invalid_argument_error("no such thread");
  if (t->state() != ThreadState::kSuspended) {
    return failed_precondition_error("thread is not suspended");
  }
  t->set_state(ThreadState::kRunnable);
  t->skip_breakpoint_once = skip_breakpoint_once;
  return Status::ok();
}

// --------------------------------------------------------------------------
// Core interpreter
// --------------------------------------------------------------------------

Word Machine::value_of(const Frame& frame, const ir::Value* value) const {
  switch (value->kind()) {
    case ir::ValueKind::kConstant:
      return static_cast<const ir::Constant*>(value)->value();
    case ir::ValueKind::kGlobalVariable:
      return static_cast<Word>(global_address(
          static_cast<const ir::GlobalVariable*>(value)));
    case ir::ValueKind::kFunction:
      return function_value(static_cast<const ir::Function*>(value));
    case ir::ValueKind::kArgument:
    case ir::ValueKind::kInstruction: {
      auto it = frame.regs.find(value);
      if (it == frame.regs.end()) {
        // Use of a value whose def never executed on this path. MiniIR is
        // not strictly SSA-verified for dominance; reading 0 mirrors the
        // "uninitialized data" hint the dynamic race verifier reports.
        return 0;
      }
      return it->second;
    }
  }
  return 0;
}

void Machine::set_result(Frame& frame, const ir::Instruction* instr,
                         Word value) {
  if (!instr->type().is_void()) frame.regs[instr] = value;
}

void Machine::enter_function(Thread& thread, const ir::Function* callee,
                             const std::vector<Word>& args,
                             const ir::Instruction* call_site) {
  Frame frame;
  frame.function = callee;
  frame.block = callee->entry();
  frame.index = 0;
  frame.call_site = call_site;
  frame.serial = next_frame_serial_++;
  frame.ctx = contexts_.push(
      thread.frames().empty() ? kNoContext : thread.top().ctx, callee,
      call_site);
  for (std::size_t i = 0; i < callee->arguments().size(); ++i) {
    frame.regs[callee->argument(i)] = i < args.size() ? args[i] : 0;
  }
  thread.frames().push_back(std::move(frame));
}

void Machine::return_from_function(Thread& thread, std::optional<Word> value) {
  const std::uint64_t serial = thread.top().serial;
  const ir::Instruction* call_site = thread.top().call_site;
  memory_.pop_frame(serial);
  thread.frames().pop_back();
  if (thread.frames().empty()) {
    finish_thread(thread);
    return;
  }
  Frame& caller = thread.top();
  if (call_site != nullptr && value.has_value()) {
    set_result(caller, call_site, *value);
  }
  ++caller.index;  // move past the call site
}

void Machine::jump(Frame& frame, const ir::BasicBlock* target) {
  frame.prev_block = frame.block;
  frame.block = target;
  frame.index = 0;
  // Parallel-copy semantics for the block's leading phis: read all incoming
  // values against the old register state, then commit.
  std::vector<std::pair<const ir::Instruction*, Word>> updates;
  for (const auto& instr : target->instructions()) {
    if (instr->opcode() != ir::Opcode::kPhi) break;
    Word chosen = 0;
    for (std::size_t i = 0; i < instr->phi_blocks().size(); ++i) {
      if (instr->phi_blocks()[i] == frame.prev_block) {
        chosen = value_of(frame, instr->phi_values()[i]);
        break;
      }
    }
    updates.emplace_back(instr.get(), chosen);
  }
  for (const auto& [instr, value] : updates) {
    frame.regs[instr] = value;
  }
}

void Machine::finish_thread(Thread& thread) {
  thread.frames().clear();
  thread.set_state(ThreadState::kFinished);
  notify_sync(thread.id(), Observer::SyncKind::kThreadFinish, thread.id());
  // Wake joiners.
  for (const auto& t : threads_) {
    if (t->state() == ThreadState::kWaitingJoin &&
        t->join_target == thread.id()) {
      t->set_state(ThreadState::kRunnable);
    }
  }
}

Word Machine::do_load(Thread& thread, const ir::Instruction* instr,
                      Address addr) {
  Word value = 0;
  const MemFault fault = memory_.load(addr, value);
  if (fault != MemFault::kNone) {
    report_fault(thread, instr, fault, addr);
    if (fault != MemFault::kUseAfterFree) return 0;
    // A dangling read still observes the stale memory, which is what the
    // SSDB/Chrome exploits rely on.
    value = memory_.load_raw(addr);
  }
  return value;
}

void Machine::do_store(Thread& thread, const ir::Instruction* instr,
                       Address addr, Word value) {
  const MemFault fault = memory_.store(addr, value);
  if (fault != MemFault::kNone) {
    report_fault(thread, instr, fault, addr);
  }
}

void Machine::report_fault(Thread& thread, const ir::Instruction* instr,
                           MemFault fault, Address addr) {
  SecurityEventKind kind = SecurityEventKind::kOutOfBounds;
  switch (fault) {
    case MemFault::kNullDeref: kind = SecurityEventKind::kNullPtrDeref; break;
    case MemFault::kUseAfterFree:
      kind = SecurityEventKind::kUseAfterFree;
      break;
    case MemFault::kDoubleFree: kind = SecurityEventKind::kDoubleFree; break;
    case MemFault::kOutOfBounds:
    case MemFault::kBadFree:
      kind = SecurityEventKind::kOutOfBounds;
      break;
    case MemFault::kNone: return;
  }
  const MemObject* obj = memory_.find_object(addr);
  std::string detail = "addr=" + std::to_string(addr);
  if (obj != nullptr && !obj->name.empty()) {
    detail += " object=" + obj->name;
  }
  emit_event(kind, thread, instr, std::move(detail));
}

void Machine::emit_event(SecurityEventKind kind, Thread& thread,
                         const ir::Instruction* instr, std::string detail) {
  if (security_events_.size() >= kMaxSecurityEvents) return;
  SecurityEvent event;
  event.kind = kind;
  event.tid = thread.id();
  event.instr = instr;
  event.stack = thread.call_stack();
  event.detail = std::move(detail);
  OWL_LOG(kDebug) << "security event: " << event.to_string();
  security_events_.push_back(std::move(event));
}

void Machine::notify_access(const Observer::Access& access) {
  if (fault_injector_ != nullptr && fault_injector_->truncate_events()) {
    return;  // injected truncation: observers miss this event
  }
  if (observers_.empty()) return;
  // Stamp the accessing thread's interned calling context so observers can
  // defer call-stack materialization (notify runs before the frame index
  // advances, so the top frame is still at `access.instr`).
  Observer::Access stamped = access;
  if (const Thread* t = thread(access.tid)) {
    stamped.context = t->context();
  }
  for (Observer* obs : observers_) obs->on_access(stamped, *this);
}

void Machine::notify_sync(ThreadId tid, Observer::SyncKind kind,
                          Address addr) {
  if (fault_injector_ != nullptr && fault_injector_->truncate_events()) {
    return;
  }
  const Observer::Sync sync{tid, kind, addr};
  for (Observer* obs : observers_) obs->on_sync(sync, *this);
}

void Machine::execute(Thread& thread) {
  thread.skip_breakpoint_once = false;
  Frame& frame = thread.top();
  const ir::Instruction* instr = frame.current();
  assert(instr != nullptr);
  const ThreadId tid = thread.id();

  using ir::Opcode;
  switch (instr->opcode()) {
    // --- arithmetic / logic ---
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr: {
      const Word a = value_of(frame, instr->operand(0));
      const Word b = value_of(frame, instr->operand(1));
      const auto ua = static_cast<std::uint64_t>(a);
      const auto ub = static_cast<std::uint64_t>(b);
      std::uint64_t r = 0;
      switch (instr->opcode()) {
        case Opcode::kAdd: r = ua + ub; break;
        case Opcode::kSub:
          r = ua - ub;
          // Unsigned-counter underflow monitor: both operands in the small
          // non-negative domain but the difference wraps — the Apache-46215
          // "busiest thread ever" value (§8.4).
          if (a >= 0 && b >= 0 && a < (1LL << 62) && b < (1LL << 62) &&
              static_cast<Word>(r) < 0) {
            emit_event(SecurityEventKind::kIntegerUnderflow, thread, instr,
                       str_format("%lld - %lld wrapped to %llu",
                                  static_cast<long long>(a),
                                  static_cast<long long>(b),
                                  static_cast<unsigned long long>(r)));
          }
          break;
        case Opcode::kMul: r = ua * ub; break;
        case Opcode::kUDiv: r = ub == 0 ? 0 : ua / ub; break;
        case Opcode::kSDiv: r = b == 0 ? 0 : static_cast<std::uint64_t>(a / b); break;
        case Opcode::kAnd: r = ua & ub; break;
        case Opcode::kOr: r = ua | ub; break;
        case Opcode::kXor: r = ua ^ ub; break;
        case Opcode::kShl: r = ub >= 64 ? 0 : ua << ub; break;
        case Opcode::kLShr: r = ub >= 64 ? 0 : ua >> ub; break;
        default: break;
      }
      set_result(frame, instr, static_cast<Word>(r));
      ++frame.index;
      break;
    }
    case Opcode::kICmp: {
      const Word a = value_of(frame, instr->operand(0));
      const Word b = value_of(frame, instr->operand(1));
      const auto ua = static_cast<std::uint64_t>(a);
      const auto ub = static_cast<std::uint64_t>(b);
      bool r = false;
      switch (instr->predicate()) {
        case ir::CmpPredicate::kEq: r = a == b; break;
        case ir::CmpPredicate::kNe: r = a != b; break;
        case ir::CmpPredicate::kSLt: r = a < b; break;
        case ir::CmpPredicate::kSLe: r = a <= b; break;
        case ir::CmpPredicate::kSGt: r = a > b; break;
        case ir::CmpPredicate::kSGe: r = a >= b; break;
        case ir::CmpPredicate::kULt: r = ua < ub; break;
        case ir::CmpPredicate::kULe: r = ua <= ub; break;
        case ir::CmpPredicate::kUGt: r = ua > ub; break;
        case ir::CmpPredicate::kUGe: r = ua >= ub; break;
      }
      set_result(frame, instr, r ? 1 : 0);
      ++frame.index;
      break;
    }

    // --- memory ---
    case Opcode::kAlloca: {
      const Address base =
          memory_.allocate(ObjectKind::kStack,
                           static_cast<std::uint64_t>(instr->imm()), 0,
                           instr->name(), frame.serial);
      set_result(frame, instr, static_cast<Word>(base));
      ++frame.index;
      break;
    }
    case Opcode::kMalloc: {
      Word cells = value_of(frame, instr->operand(0));
      if (cells <= 0) cells = 1;
      const Address base = memory_.allocate(
          ObjectKind::kHeap, static_cast<std::uint64_t>(cells), 0,
          instr->name());
      set_result(frame, instr, static_cast<Word>(base));
      ++frame.index;
      break;
    }
    case Opcode::kFree: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      const MemFault fault = memory_.free_heap(addr);
      if (fault != MemFault::kNone) report_fault(thread, instr, fault, addr);
      ++frame.index;
      break;
    }
    case Opcode::kLoad: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      const Word value = do_load(thread, instr, addr);
      set_result(frame, instr, value);
      notify_access({tid, instr, addr, value, /*is_write=*/false,
                     /*is_atomic=*/false});
      ++frame.index;
      break;
    }
    case Opcode::kStore: {
      const Word value = value_of(frame, instr->operand(0));
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(1)));
      do_store(thread, instr, addr, value);
      notify_access({tid, instr, addr, value, /*is_write=*/true,
                     /*is_atomic=*/false});
      ++frame.index;
      break;
    }
    case Opcode::kGep: {
      const Word base = value_of(frame, instr->operand(0));
      const Word offset = value_of(frame, instr->operand(1));
      set_result(frame, instr, base + offset * 8);
      ++frame.index;
      break;
    }

    // --- control flow ---
    case Opcode::kBr: {
      const Word cond = value_of(frame, instr->operand(0));
      jump(frame, cond != 0 ? instr->targets()[0] : instr->targets()[1]);
      break;
    }
    case Opcode::kJmp:
      jump(frame, instr->targets()[0]);
      break;
    case Opcode::kPhi:
      // Value was committed by jump(); the phi itself is a no-op step.
      ++frame.index;
      break;
    case Opcode::kCall: {
      const ir::Function* callee = instr->callee();
      if (!callee->has_body()) {
        // External function: opaque, returns 0.
        set_result(frame, instr, 0);
        ++frame.index;
        break;
      }
      std::vector<Word> args;
      args.reserve(instr->operand_count());
      for (const ir::Value* op : instr->operands()) {
        args.push_back(value_of(frame, op));
      }
      enter_function(thread, callee, args, instr);
      break;
    }
    case Opcode::kCallPtr: {
      const Word target = value_of(frame, instr->operand(0));
      if (target == 0) {
        emit_event(SecurityEventKind::kNullFuncPtrDeref, thread, instr,
                   "indirect call through NULL function pointer");
        set_result(frame, instr, 0);
        ++frame.index;
        break;
      }
      const ir::Function* callee = resolve_function(target);
      if (callee == nullptr || !callee->has_body()) {
        emit_event(SecurityEventKind::kArbitraryCodeExec, thread, instr,
                   "indirect call to non-function value " +
                       std::to_string(target));
        set_result(frame, instr, 0);
        ++frame.index;
        break;
      }
      std::vector<Word> args;
      for (std::size_t i = 1; i < instr->operand_count(); ++i) {
        args.push_back(value_of(frame, instr->operand(i)));
      }
      enter_function(thread, callee, args, instr);
      break;
    }
    case Opcode::kRet: {
      std::optional<Word> value;
      if (instr->operand_count() == 1) {
        value = value_of(frame, instr->operand(0));
      }
      return_from_function(thread, value);
      break;
    }

    // --- concurrency ---
    case Opcode::kLock: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      MutexState& mutex = mutexes_[addr];
      if (mutex.held) {
        thread.set_state(ThreadState::kBlockedOnLock);
        thread.blocked_mutex = addr;
        mutex.waiters.push_back(tid);
        // Do not advance: the instruction re-executes after wakeup.
        break;
      }
      mutex.held = true;
      mutex.owner = tid;
      notify_sync(tid, Observer::SyncKind::kLockAcquire, addr);
      ++frame.index;
      break;
    }
    case Opcode::kUnlock: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      MutexState& mutex = mutexes_[addr];
      mutex.held = false;
      mutex.owner = 0;
      notify_sync(tid, Observer::SyncKind::kLockRelease, addr);
      for (ThreadId waiter : mutex.waiters) {
        if (waiter < threads_.size() &&
            threads_[waiter]->state() == ThreadState::kBlockedOnLock) {
          threads_[waiter]->set_state(ThreadState::kRunnable);
        }
      }
      mutex.waiters.clear();
      ++frame.index;
      break;
    }
    case Opcode::kThreadCreate: {
      const Word arg = value_of(frame, instr->operand(0));
      const ThreadId child = spawn(instr->callee(), arg);
      set_result(frame, instr, static_cast<Word>(child));
      notify_sync(tid, Observer::SyncKind::kThreadCreate, child);
      ++frame.index;
      break;
    }
    case Opcode::kThreadJoin: {
      const auto target =
          static_cast<ThreadId>(value_of(frame, instr->operand(0)));
      const Thread* joined =
          target < threads_.size() ? threads_[target].get() : nullptr;
      if (joined == nullptr || joined->finished()) {
        notify_sync(tid, Observer::SyncKind::kThreadJoin, target);
        ++frame.index;
        break;
      }
      thread.set_state(ThreadState::kWaitingJoin);
      thread.join_target = target;
      break;  // re-executes after the target finishes
    }
    case Opcode::kAtomicRMWAdd: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      const Word delta = value_of(frame, instr->operand(1));
      const Word old = do_load(thread, instr, addr);
      do_store(thread, instr, addr, old + delta);
      set_result(frame, instr, old);
      notify_access({tid, instr, addr, old + delta, /*is_write=*/true,
                     /*is_atomic=*/true});
      ++frame.index;
      break;
    }
    case Opcode::kHbRelease: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      notify_sync(tid, Observer::SyncKind::kHbRelease, addr);
      ++frame.index;
      break;
    }
    case Opcode::kHbAcquire: {
      const Address addr =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      notify_sync(tid, Observer::SyncKind::kHbAcquire, addr);
      ++frame.index;
      break;
    }

    // --- environment ---
    case Opcode::kInput: {
      const Word index = value_of(frame, instr->operand(0));
      Word value = 0;
      if (index >= 0 &&
          static_cast<std::size_t>(index) < options_.inputs.size()) {
        value = options_.inputs[static_cast<std::size_t>(index)];
      }
      set_result(frame, instr, value);
      ++frame.index;
      break;
    }
    case Opcode::kIoDelay: {
      const Word ticks = value_of(frame, instr->operand(0));
      if (ticks > 0) {
        thread.wake_tick = tick_ + static_cast<std::uint64_t>(ticks);
        thread.set_state(ThreadState::kSleeping);
      }
      ++frame.index;
      break;
    }
    case Opcode::kYield:
      ++frame.index;
      break;
    case Opcode::kPrint:
      prints_.push_back(value_of(frame, instr->operand(0)));
      ++frame.index;
      break;

    // --- vulnerable-site intrinsics ---
    case Opcode::kStrCpy: {
      const Address dst =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      const Address src =
          static_cast<Address>(value_of(frame, instr->operand(1)));
      // Measure the source string (cells until a 0 cell).
      std::uint64_t len = 0;
      while (len < options_.strcpy_cap && memory_.load_raw(src + len * 8) != 0) {
        ++len;
      }
      const std::uint64_t room = memory_.cells_until_end(dst);
      if (room == 0) {
        report_fault(thread, instr,
                     dst < 4096 ? MemFault::kNullDeref : MemFault::kOutOfBounds,
                     dst);
      } else if (len + 1 > room) {
        emit_event(SecurityEventKind::kBufferOverflow, thread, instr,
                   str_format("strcpy of %llu cells into %llu-cell buffer",
                              static_cast<unsigned long long>(len + 1),
                              static_cast<unsigned long long>(room)));
      }
      // The copy happens regardless — overflowing writes corrupt whatever
      // lies beyond the destination, exactly like the real attacks.
      for (std::uint64_t i = 0; i <= len; ++i) {
        memory_.store_raw(dst + i * 8,
                          i < len ? memory_.load_raw(src + i * 8) : 0);
      }
      notify_access({tid, instr, src, static_cast<Word>(len),
                     /*is_write=*/false, /*is_atomic=*/false});
      notify_access({tid, instr, dst, static_cast<Word>(len),
                     /*is_write=*/true, /*is_atomic=*/false});
      ++frame.index;
      break;
    }
    case Opcode::kMemCopy: {
      const Address dst =
          static_cast<Address>(value_of(frame, instr->operand(0)));
      const Address src =
          static_cast<Address>(value_of(frame, instr->operand(1)));
      Word len = value_of(frame, instr->operand(2));
      if (len < 0) len = 0;
      if (static_cast<std::uint64_t>(len) > options_.strcpy_cap) {
        len = static_cast<Word>(options_.strcpy_cap);
      }
      const std::uint64_t room = memory_.cells_until_end(dst);
      if (static_cast<std::uint64_t>(len) > room) {
        emit_event(SecurityEventKind::kBufferOverflow, thread, instr,
                   str_format("memcpy of %lld cells into %llu-cell space",
                              static_cast<long long>(len),
                              static_cast<unsigned long long>(room)));
      }
      for (Word i = 0; i < len; ++i) {
        memory_.store_raw(dst + static_cast<Address>(i) * 8,
                          memory_.load_raw(src + static_cast<Address>(i) * 8));
      }
      notify_access({tid, instr, src, len, /*is_write=*/false,
                     /*is_atomic=*/false});
      notify_access({tid, instr, dst, len, /*is_write=*/true,
                     /*is_atomic=*/false});
      ++frame.index;
      break;
    }
    case Opcode::kSetUid: {
      const Word uid = value_of(frame, instr->operand(0));
      setuids_.push_back({tid, uid});
      if (uid == 0 && !options_.authorized_root) {
        emit_event(SecurityEventKind::kPrivilegeEscalation, thread, instr,
                   "unauthorized setuid(0)");
      }
      ++frame.index;
      break;
    }
    case Opcode::kFileAccess: {
      // The access(2)-style check always reports "permitted"; the TOCTOU
      // window is modelled by what happens between this and file_open.
      set_result(frame, instr, 1);
      ++frame.index;
      break;
    }
    case Opcode::kFileOpen: {
      const Word path_id = value_of(frame, instr->operand(0));
      const Word fd = next_fd_++;
      file_opens_.push_back({tid, path_id, fd});
      set_result(frame, instr, fd);
      ++frame.index;
      break;
    }
    case Opcode::kFileWrite: {
      const Word fd = value_of(frame, instr->operand(0));
      // Descriptor-stability monitor: a write site that always used one
      // descriptor suddenly using another means the fd cell was corrupted —
      // the Apache-25520 HTML-integrity signature (§8.4, Fig. 7).
      auto [it, inserted] = first_fd_at_.try_emplace(instr, fd);
      if (!inserted && it->second != fd) {
        emit_event(SecurityEventKind::kDataLeak, thread, instr,
                   str_format("write site switched from fd %lld to fd %lld",
                              static_cast<long long>(it->second),
                              static_cast<long long>(fd)));
      }
      const Address payload =
          static_cast<Address>(value_of(frame, instr->operand(1)));
      Word len = value_of(frame, instr->operand(2));
      if (len < 0) len = 0;
      if (len > 4096) len = 4096;
      FileWriteRecord record;
      record.tid = tid;
      record.fd = fd;
      record.instr = instr;
      for (Word i = 0; i < len; ++i) {
        record.payload.push_back(
            memory_.load_raw(payload + static_cast<Address>(i) * 8));
      }
      file_writes_.push_back(std::move(record));
      ++frame.index;
      break;
    }
    case Opcode::kFork: {
      set_result(frame, instr, next_pid_++);
      ++frame.index;
      break;
    }
    case Opcode::kEval: {
      evals_.push_back({tid, value_of(frame, instr->operand(0))});
      ++frame.index;
      break;
    }
  }
}

}  // namespace owl::interp
