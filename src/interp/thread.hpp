// Simulated threads: call frames, register files, and blocking states.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hpp"
#include "interp/memory.hpp"

namespace owl::interp {

using ThreadId = std::uint32_t;

/// Interned calling-context id (see context.hpp). Frames carry one so
/// observers can reconstruct call stacks lazily instead of snapshotting
/// them on every memory access.
using ContextId = std::uint32_t;
inline constexpr ContextId kNoContext = 0;

/// One entry of a call stack, outermost-first. Race reports and Algorithm 1
/// both consume this shape (the paper's Fig. 4).
struct StackEntry {
  const ir::Function* function = nullptr;
  /// The instruction about to execute (innermost frame) or the call site
  /// (outer frames).
  const ir::Instruction* instr = nullptr;

  std::string to_string() const;
};

using CallStack = std::vector<StackEntry>;

/// Renders "func (file:line)" lines, innermost last, like the paper's
/// Libsafe call-stack figure.
std::string call_stack_to_string(const CallStack& stack);

/// An activation record.
struct Frame {
  const ir::Function* function = nullptr;
  const ir::BasicBlock* block = nullptr;
  std::size_t index = 0;                     ///< next instruction in block
  const ir::BasicBlock* prev_block = nullptr;  ///< for phi resolution
  const ir::Instruction* call_site = nullptr;  ///< in the caller
  std::uint64_t serial = 0;                  ///< for stack-object lifetime
  ContextId ctx = kNoContext;                ///< interned calling context
  std::unordered_map<const ir::Value*, Word> regs;

  const ir::Instruction* current() const {
    if (block == nullptr || index >= block->size()) return nullptr;
    return block->instructions()[index].get();
  }
};

enum class ThreadState {
  kRunnable,
  kBlockedOnLock,  ///< waiting for a mutex
  kSleeping,       ///< inside a simulated IO delay
  kWaitingJoin,    ///< joined thread not finished yet
  kSuspended,      ///< halted by a thread-specific breakpoint (§5.2)
  kFinished,
};

std::string_view thread_state_name(ThreadState state) noexcept;

class Thread {
 public:
  Thread(ThreadId id, const ir::Function* entry) : id_(id), entry_(entry) {}

  ThreadId id() const noexcept { return id_; }
  const ir::Function* entry() const noexcept { return entry_; }

  ThreadState state() const noexcept { return state_; }
  void set_state(ThreadState s) noexcept { state_ = s; }
  bool finished() const noexcept { return state_ == ThreadState::kFinished; }

  std::vector<Frame>& frames() noexcept { return frames_; }
  const std::vector<Frame>& frames() const noexcept { return frames_; }
  Frame& top() { return frames_.back(); }
  const Frame& top() const { return frames_.back(); }

  /// The instruction this thread will execute next (nullptr if finished).
  const ir::Instruction* next_instruction() const {
    return frames_.empty() ? nullptr : frames_.back().current();
  }

  /// Snapshot of the current call stack, outermost first.
  CallStack call_stack() const;

  /// Interned id of the current calling context (kNoContext when no frame
  /// is active). Combined with the pending instruction it reproduces
  /// call_stack() via ContextTree::call_stack.
  ContextId context() const noexcept {
    return frames_.empty() ? kNoContext : frames_.back().ctx;
  }

  // Blocking bookkeeping (interpreted by the Machine).
  Address blocked_mutex = 0;
  std::uint64_t wake_tick = 0;
  ThreadId join_target = 0;
  /// Set when a debugger resume must not immediately re-trigger the same
  /// breakpoint (the verifier's "temporarily release" rule, §5.2).
  bool skip_breakpoint_once = false;

 private:
  ThreadId id_;
  const ir::Function* entry_;
  ThreadState state_ = ThreadState::kRunnable;
  std::vector<Frame> frames_;
};

}  // namespace owl::interp
