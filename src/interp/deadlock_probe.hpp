// Directed replay confirmation for deadlock candidates (DESIGN.md §11).
//
// The static lock-order graph over-approximates: a cycle in it is only a
// *potential* deadlock (the cycle may be unreachable, or guarded by an
// outer "gate" lock that serializes the conflicting regions). Before
// reporting, the DeadlockChecker replays the program under a scheduler that
// actively drives the cycle: any thread poised to take a *second* cycle
// lock is parked while other threads make progress, until every runnable
// thread is poised — then they are released one by one, each blocking on a
// mutex a parked peer already owns. If the machine ends in StopReason::
// kDeadlock, the cycle is realizable and the finding is confirmed; if the
// program still terminates, the candidate is downgraded, not reported as
// confirmed. The whole probe is deterministic (lowest-tid-first, no
// randomness), so findings byte-diff across runs and job counts.
#pragma once

#include <cstdint>
#include <vector>

#include "interp/machine.hpp"

namespace owl::interp {

struct DeadlockProbeResult {
  bool confirmed = false;      ///< replay ended with StopReason::kDeadlock
  StopReason stop = StopReason::kAllFinished;
  std::uint64_t steps = 0;
};

/// Drives `machine` (already started, not yet run) toward a deadlock over
/// `cycle_locks` (runtime addresses of the mutexes on the candidate cycle).
DeadlockProbeResult probe_deadlock(Machine& machine,
                                   const std::vector<Address>& cycle_locks);

}  // namespace owl::interp
