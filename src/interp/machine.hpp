// The simulated multithreaded machine executing MiniIR.
//
// This is the substrate under everything dynamic in OWL: the race detectors
// observe its memory/sync events, the verifiers drive it through the
// debugger, and the exploit drivers read its security-event log to decide
// whether an attack succeeded. One Machine = one program execution under
// one scheduler with one input vector.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "interp/context.hpp"
#include "interp/debugger.hpp"
#include "interp/memory.hpp"
#include "interp/scheduler.hpp"
#include "interp/thread.hpp"
#include "support/fault_injector.hpp"
#include "support/status.hpp"

namespace owl::interp {

/// Security-relevant consequences, i.e. what "the attack succeeded" means
/// for each class of concurrency attack in the study (§3, §8.4).
enum class SecurityEventKind {
  kNullPtrDeref,       ///< data pointer: Linux uselib-style kernel oops
  kNullFuncPtrDeref,   ///< function pointer: Fig. 2 / Fig. 6 line 347
  kArbitraryCodeExec,  ///< control transferred to a non-function address
  kBufferOverflow,     ///< write past an object: Libsafe Fig. 1, Apache Fig. 7
  kUseAfterFree,       ///< SSDB Fig. 6, Chrome
  kDoubleFree,         ///< Apache-2.0.48, MySQL-5.1.35
  kOutOfBounds,        ///< access to unmapped memory
  kPrivilegeEscalation,///< unauthorized setuid(0): MySQL-24988, Linux-2.6.29
  kIntegerUnderflow,   ///< unsigned counter wrapped: Apache-46215 Fig. 8
  kDataLeak,           ///< payload written to a corrupted file descriptor
  kDeadlock,           ///< no runnable thread while some are blocked
};

std::string_view security_event_kind_name(SecurityEventKind kind) noexcept;

struct SecurityEvent {
  SecurityEventKind kind;
  ThreadId tid = 0;
  const ir::Instruction* instr = nullptr;
  CallStack stack;
  std::string detail;  ///< free-form: object names, values, overflow sizes

  std::string to_string() const;
};

/// Side-effect records the exploit predicates consume.
struct FileOpenRecord {
  ThreadId tid;
  Word path_id;
  Word fd;
};
struct FileWriteRecord {
  ThreadId tid;
  Word fd;
  std::vector<Word> payload;
  const ir::Instruction* instr;
};
struct EvalRecord {
  ThreadId tid;
  Word command_id;
};
struct SetUidRecord {
  ThreadId tid;
  Word uid;
};

class Machine;

/// Observation hooks for dynamic analyses (the race detectors).
class Observer {
 public:
  virtual ~Observer() = default;

  struct Access {
    ThreadId tid;
    const ir::Instruction* instr;
    Address addr;
    Word value;        ///< value read, or value being written
    bool is_write;
    bool is_atomic;
    /// Interned calling context of the accessing thread at the moment of
    /// the access (see ContextTree). Together with `instr` it reproduces
    /// the thread's call stack without snapshotting it eagerly.
    ContextId context = kNoContext;
  };

  enum class SyncKind {
    kLockAcquire,
    kLockRelease,
    kHbRelease,
    kHbAcquire,
    kThreadCreate,  ///< addr field carries the child thread id
    kThreadFinish,
    kThreadJoin,    ///< addr field carries the joined thread id
  };

  struct Sync {
    ThreadId tid;
    SyncKind kind;
    Address addr;  ///< mutex / sync address, or a thread id for create/join
  };

  virtual void on_access(const Access& access, const Machine& machine) = 0;
  virtual void on_sync(const Sync& sync, const Machine& machine) = 0;
};

struct MachineOptions {
  std::vector<Word> inputs;          ///< workload input vector (kInput)
  std::uint64_t max_steps = 2'000'000;
  bool authorized_root = false;      ///< setuid(0) legal for this run?
  std::uint64_t strcpy_cap = 65536;  ///< runaway-copy guard
};

enum class StopReason {
  kAllFinished,
  kBreakpoint,   ///< a thread just suspended on a debugger breakpoint
  kDeadlock,
  kStepBudget,
  kAllSuspended, ///< only suspended/blocked threads remain (verifier's turn)
};

struct RunResult {
  StopReason reason = StopReason::kAllFinished;
  std::uint64_t steps = 0;
  /// Set when reason == kBreakpoint.
  std::optional<ThreadId> break_thread;
  BreakpointId break_id = 0;
};

class Machine {
 public:
  /// The module must outlive the machine and pass ir::verify_module.
  Machine(const ir::Module& module, MachineOptions options);

  // --- setup ---
  /// Spawns the initial thread at `entry` (no arguments). Must be called
  /// once before run().
  ThreadId start(const ir::Function* entry);
  /// Spawns an extra root thread (workloads with several entry points).
  ThreadId spawn(const ir::Function* entry, Word arg);

  void add_observer(Observer* observer) { observers_.push_back(observer); }
  void set_debugger(Debugger* debugger) noexcept { debugger_ = debugger; }
  /// Attaches the resilience layer's fault-injection harness (may be null).
  /// The machine probes it for scheduler stalls, breakpoint livelocks, and
  /// event-stream truncation; see support/fault_injector.hpp.
  void set_fault_injector(support::FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }

  // --- execution ---
  /// Runs under `scheduler` until a stop condition. Can be called again
  /// after a breakpoint stop (resume the thread first).
  RunResult run(Scheduler& scheduler);

  /// Executes exactly one instruction of `tid` (must be runnable or
  /// suspended; a suspended thread is resumed for this one step).
  Status step_thread(ThreadId tid);

  /// Makes a suspended thread runnable again. With `skip_breakpoint_once`
  /// the pending instruction executes even though its breakpoint is armed.
  Status resume_thread(ThreadId tid, bool skip_breakpoint_once = true);

  // --- inspection ---
  const ir::Module& module() const noexcept { return *module_; }
  Memory& memory() noexcept { return memory_; }
  const Memory& memory() const noexcept { return memory_; }

  const std::vector<std::unique_ptr<Thread>>& threads() const noexcept {
    return threads_;
  }
  Thread* thread(ThreadId tid);
  const Thread* thread(ThreadId tid) const;
  std::vector<ThreadId> runnable_threads() const;

  std::uint64_t tick() const noexcept { return tick_; }

  /// The interned calling-context tree for this execution (grows as frames
  /// are pushed; ids stay valid for the machine's lifetime).
  const ContextTree& contexts() const noexcept { return contexts_; }

  /// Base address of a global (allocated at construction).
  Address global_address(const ir::GlobalVariable* global) const;
  Address global_address(std::string_view name) const;

  /// Reads a global's first cell (test/bench convenience).
  Word read_global(std::string_view name) const;

  /// Evaluates `value` in the context of `tid`'s innermost frame — what the
  /// operand *would* hold if the pending instruction executed now. The race
  /// verifier uses this to confirm two suspended threads are about to touch
  /// the same address (the "racing moment", §5.2).
  Word eval_in_thread(ThreadId tid, const ir::Value* value) const;

  /// Resolves a runtime word to a function (function "pointers" are value
  /// ids); nullptr if the word designates no function.
  const ir::Function* resolve_function(Word value) const;
  /// The runtime word representing &function.
  Word function_value(const ir::Function* function) const;

  // --- consequence log ---
  const std::vector<SecurityEvent>& security_events() const noexcept {
    return security_events_;
  }
  bool has_event(SecurityEventKind kind) const noexcept;
  const std::vector<FileOpenRecord>& file_opens() const noexcept {
    return file_opens_;
  }
  const std::vector<FileWriteRecord>& file_writes() const noexcept {
    return file_writes_;
  }
  const std::vector<EvalRecord>& evals() const noexcept { return evals_; }
  const std::vector<SetUidRecord>& setuids() const noexcept {
    return setuids_;
  }
  const std::vector<Word>& prints() const noexcept { return prints_; }

 private:
  struct MutexState {
    ThreadId owner = 0;
    bool held = false;
    std::vector<ThreadId> waiters;
  };

  // Core interpreter: executes one instruction of `thread`.
  void execute(Thread& thread);
  Word value_of(const Frame& frame, const ir::Value* value) const;
  void set_result(Frame& frame, const ir::Instruction* instr, Word value);
  void enter_function(Thread& thread, const ir::Function* callee,
                      const std::vector<Word>& args,
                      const ir::Instruction* call_site);
  void return_from_function(Thread& thread, std::optional<Word> value);
  void jump(Frame& frame, const ir::BasicBlock* target);
  void finish_thread(Thread& thread);

  // Memory access with fault-to-event translation.
  Word do_load(Thread& thread, const ir::Instruction* instr, Address addr);
  void do_store(Thread& thread, const ir::Instruction* instr, Address addr,
                Word value);
  void report_fault(Thread& thread, const ir::Instruction* instr,
                    MemFault fault, Address addr);

  void emit_event(SecurityEventKind kind, Thread& thread,
                  const ir::Instruction* instr, std::string detail);
  void notify_access(const Observer::Access& access);
  void notify_sync(ThreadId tid, Observer::SyncKind kind, Address addr);

  const ir::Module* module_;
  MachineOptions options_;
  Memory memory_;
  ContextTree contexts_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<Observer*> observers_;
  Debugger* debugger_ = nullptr;
  support::FaultInjector* fault_injector_ = nullptr;

  std::unordered_map<const ir::GlobalVariable*, Address> global_addr_;
  std::unordered_map<std::uint64_t, const ir::Function*> functions_by_id_;
  std::unordered_map<Address, MutexState> mutexes_;

  std::uint64_t tick_ = 0;
  std::uint64_t steps_ = 0;
  std::vector<ThreadId> unannounced_;
  std::uint64_t next_frame_serial_ = 1;
  /// Descriptor-stability monitor: first fd each write site used.
  std::unordered_map<const ir::Instruction*, Word> first_fd_at_;
  Word next_fd_ = 3;
  Word next_pid_ = 1000;
  std::optional<std::pair<ThreadId, BreakpointId>> pending_break_;

  std::vector<SecurityEvent> security_events_;
  std::vector<FileOpenRecord> file_opens_;
  std::vector<FileWriteRecord> file_writes_;
  std::vector<EvalRecord> evals_;
  std::vector<SetUidRecord> setuids_;
  std::vector<Word> prints_;
};

}  // namespace owl::interp
