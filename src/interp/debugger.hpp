// Thread-specific breakpoints — the LLDB substrate (paper §5.2).
//
// "Thread specific" means a hit halts only the hitting thread; the rest of
// the machine keeps running. OWL's dynamic race verifier parks one thread
// at each racing instruction and catches the race "in the racing moment";
// the vulnerability verifier uses the same mechanism to order the racing
// instructions before steering toward the vulnerable site.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/instruction.hpp"
#include "interp/thread.hpp"

namespace owl::interp {

using BreakpointId = std::uint32_t;

struct Breakpoint {
  BreakpointId id = 0;
  const ir::Instruction* instr = nullptr;
  /// If set, only this thread stops here (thread-specific breakpoint).
  std::optional<ThreadId> thread;
  bool enabled = true;
  std::uint64_t hit_count = 0;
};

class Debugger {
 public:
  /// Arms a breakpoint at `instr`, optionally restricted to one thread.
  BreakpointId add_breakpoint(const ir::Instruction* instr,
                              std::optional<ThreadId> thread = std::nullopt);

  void remove_breakpoint(BreakpointId id);
  void set_enabled(BreakpointId id, bool enabled);

  /// The machine consults this before executing `instr` on `tid`; a hit
  /// increments the breakpoint's counter.
  Breakpoint* match(ThreadId tid, const ir::Instruction* instr);

  const std::vector<Breakpoint>& breakpoints() const noexcept {
    return breakpoints_;
  }
  Breakpoint* find(BreakpointId id);

 private:
  std::vector<Breakpoint> breakpoints_;
  BreakpointId next_id_ = 1;
};

}  // namespace owl::interp
