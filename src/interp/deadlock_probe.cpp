#include "interp/deadlock_probe.hpp"

#include <unordered_map>
#include <unordered_set>

#include "ir/instruction.hpp"

namespace owl::interp {

namespace {

/// Tracks which cycle locks each thread currently holds, via sync events.
class CycleLockTracker final : public Observer {
 public:
  explicit CycleLockTracker(const std::unordered_set<Address>& cycle)
      : cycle_(cycle) {}

  void on_access(const Access&, const Machine&) override {}

  void on_sync(const Sync& sync, const Machine&) override {
    if (sync.kind != SyncKind::kLockAcquire &&
        sync.kind != SyncKind::kLockRelease) {
      return;
    }
    if (cycle_.count(sync.addr) == 0) return;
    if (sync.kind == SyncKind::kLockAcquire) {
      held_[sync.tid].insert(sync.addr);
    } else {
      held_[sync.tid].erase(sync.addr);
    }
  }

  bool holds_any(ThreadId tid) const {
    auto it = held_.find(tid);
    return it != held_.end() && !it->second.empty();
  }
  bool holds(ThreadId tid, Address addr) const {
    auto it = held_.find(tid);
    return it != held_.end() && it->second.count(addr) != 0;
  }

 private:
  const std::unordered_set<Address>& cycle_;
  std::unordered_map<ThreadId, std::unordered_set<Address>> held_;
};

/// Parks threads poised to take a second cycle lock while others progress;
/// once every runnable thread is poised, releases them lowest-tid-first so
/// each blocks on a mutex a peer owns. Fully deterministic.
class CycleDriveScheduler final : public Scheduler {
 public:
  CycleDriveScheduler(const Machine& machine, const CycleLockTracker& held,
                      const std::unordered_set<Address>& cycle)
      : machine_(machine), held_(held), cycle_(cycle) {}

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override {
    (void)step;
    for (const ThreadId tid : runnable) {
      if (!poised(tid)) return tid;
    }
    return runnable.front();
  }

 private:
  bool poised(ThreadId tid) const {
    const Thread* thread = machine_.thread(tid);
    if (thread == nullptr) return false;
    const ir::Instruction* instr = thread->next_instruction();
    if (instr == nullptr || instr->opcode() != ir::Opcode::kLock) return false;
    if (instr->operand_count() == 0) return false;
    if (!held_.holds_any(tid)) return false;  // first cycle lock: let it run
    const auto addr = static_cast<Address>(
        machine_.eval_in_thread(tid, instr->operand(0)));
    if (cycle_.count(addr) == 0) return false;
    return !held_.holds(tid, addr);  // a *new* cycle lock closes an edge
  }

  const Machine& machine_;
  const CycleLockTracker& held_;
  const std::unordered_set<Address>& cycle_;
};

}  // namespace

DeadlockProbeResult probe_deadlock(Machine& machine,
                                   const std::vector<Address>& cycle_locks) {
  const std::unordered_set<Address> cycle(cycle_locks.begin(),
                                          cycle_locks.end());
  CycleLockTracker tracker(cycle);
  // The tracker is stack-local: the machine must be discarded after the
  // probe (callers construct a fresh one per candidate cycle).
  machine.add_observer(&tracker);
  CycleDriveScheduler scheduler(machine, tracker, cycle);
  const RunResult result = machine.run(scheduler);
  DeadlockProbeResult out;
  out.stop = result.reason;
  out.steps = result.steps;
  out.confirmed = result.reason == StopReason::kDeadlock;
  return out;
}

}  // namespace owl::interp
