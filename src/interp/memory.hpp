// Simulated shared memory for the MiniIR interpreter.
//
// A flat 64-bit address space of 8-byte cells, segmented into objects
// (globals, stack allocations, heap allocations). Object bounds and
// liveness are tracked so the machine can surface the memory-corruption
// consequences the paper's attacks rely on — buffer overflows (Libsafe
// Fig. 1, Apache Fig. 7), use-after-free (SSDB Fig. 6, Chrome) and NULL
// dereferences (Linux Fig. 2) — as explicit security events rather than
// undefined behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace owl::interp {

using Address = std::uint64_t;
using Word = std::int64_t;

/// The first 4 KiB stay unmapped so stores through small integers (the
/// classic corrupted-pointer pattern) fault as NULL dereferences. Exported
/// so detector-side consumers (prescreen pruning) can re-check dynamically
/// that an address really lies inside object space before trusting static
/// object reasoning about it.
constexpr Address kNullGuard = 4096;

enum class ObjectKind { kGlobal, kStack, kHeap };

/// Outcome of a single memory operation.
enum class MemFault {
  kNone,
  kNullDeref,      ///< address 0 or within the unmapped first page
  kOutOfBounds,    ///< address not inside any object
  kUseAfterFree,   ///< object was freed (heap) or popped (stack)
  kDoubleFree,     ///< free() of an already-freed object
  kBadFree,        ///< free() of a non-heap or interior pointer
};

std::string_view mem_fault_name(MemFault fault) noexcept;

struct MemObject {
  Address base = 0;
  std::uint64_t cells = 0;
  ObjectKind kind = ObjectKind::kHeap;
  bool freed = false;
  std::string name;          ///< global name or "" for anonymous
  std::uint64_t owner_frame = 0;  ///< stack objects: frame serial for pop

  Address end() const noexcept { return base + cells * 8; }
  bool contains(Address addr) const noexcept {
    return addr >= base && addr < end();
  }
};

/// The address space. Not thread-safe by design: the interpreter serializes
/// all accesses (that serialization *is* the simulated schedule).
class Memory {
 public:
  Memory();

  /// Allocates an object; cells are zero-initialized to `init`.
  Address allocate(ObjectKind kind, std::uint64_t cells, Word init,
                   std::string name = "", std::uint64_t owner_frame = 0);

  /// Frees a heap object by its base address.
  MemFault free_heap(Address addr);

  /// Marks all stack objects of `owner_frame` dead (frame return).
  void pop_frame(std::uint64_t owner_frame);

  /// Reads the cell at `addr` (must be 8-byte aligned; unaligned addresses
  /// are rounded down, matching a word-granularity race detector).
  MemFault load(Address addr, Word& out) const;

  /// Writes the cell at `addr`.
  MemFault store(Address addr, Word value);

  /// Like load/store but ignores the freed flag — used to model what an
  /// attacker reads/writes through a dangling pointer after the fault has
  /// already been recorded.
  Word load_raw(Address addr) const;
  void store_raw(Address addr, Word value);

  /// Object containing `addr`, or nullptr.
  const MemObject* find_object(Address addr) const;

  /// Cells remaining in the object from `addr` to its end; 0 if unmapped.
  std::uint64_t cells_until_end(Address addr) const;

  std::size_t object_count() const noexcept { return objects_.size(); }
  std::uint64_t bytes_allocated() const noexcept { return next_; }

 private:
  MemObject* find_object_mutable(Address addr);

  // base address -> object; cell payloads in a parallel map keyed by address.
  std::map<Address, MemObject> objects_;
  std::map<Address, Word> cells_;
  Address next_;
};

}  // namespace owl::interp
