#include "interp/thread.hpp"

namespace owl::interp {

std::string StackEntry::to_string() const {
  std::string out = function != nullptr ? function->name() : "<?>";
  out += " (";
  out += instr != nullptr ? instr->loc().to_string() : "<?>";
  out += ")";
  return out;
}

std::string call_stack_to_string(const CallStack& stack) {
  std::string out;
  for (const StackEntry& entry : stack) {
    out += "  ";
    out += entry.to_string();
    out += "\n";
  }
  return out;
}

std::string_view thread_state_name(ThreadState state) noexcept {
  switch (state) {
    case ThreadState::kRunnable: return "runnable";
    case ThreadState::kBlockedOnLock: return "blocked-on-lock";
    case ThreadState::kSleeping: return "sleeping";
    case ThreadState::kWaitingJoin: return "waiting-join";
    case ThreadState::kSuspended: return "suspended";
    case ThreadState::kFinished: return "finished";
  }
  return "?";
}

CallStack Thread::call_stack() const {
  CallStack stack;
  stack.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    const bool innermost = (i + 1 == frames_.size());
    // Outer frames report their call site; the innermost frame reports the
    // instruction about to execute.
    const ir::Instruction* instr =
        innermost ? frame.current()
                  : frames_[i + 1].call_site;
    stack.push_back(StackEntry{frame.function, instr});
  }
  return stack;
}

}  // namespace owl::interp
