#include "interp/debugger.hpp"

#include <algorithm>

namespace owl::interp {

BreakpointId Debugger::add_breakpoint(const ir::Instruction* instr,
                                      std::optional<ThreadId> thread) {
  Breakpoint bp;
  bp.id = next_id_++;
  bp.instr = instr;
  bp.thread = thread;
  breakpoints_.push_back(bp);
  return bp.id;
}

void Debugger::remove_breakpoint(BreakpointId id) {
  breakpoints_.erase(
      std::remove_if(breakpoints_.begin(), breakpoints_.end(),
                     [&](const Breakpoint& bp) { return bp.id == id; }),
      breakpoints_.end());
}

void Debugger::set_enabled(BreakpointId id, bool enabled) {
  if (Breakpoint* bp = find(id)) bp->enabled = enabled;
}

Breakpoint* Debugger::match(ThreadId tid, const ir::Instruction* instr) {
  for (Breakpoint& bp : breakpoints_) {
    if (!bp.enabled || bp.instr != instr) continue;
    if (bp.thread.has_value() && *bp.thread != tid) continue;
    ++bp.hit_count;
    return &bp;
  }
  return nullptr;
}

Breakpoint* Debugger::find(BreakpointId id) {
  for (Breakpoint& bp : breakpoints_) {
    if (bp.id == id) return &bp;
  }
  return nullptr;
}

}  // namespace owl::interp
