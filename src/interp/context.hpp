// Interned calling-context tree.
//
// Every Frame carries a ContextId naming its full calling context as a node
// in this tree: (parent context, function, call site). Pushing a frame
// interns one node; the path from a node to the root is exactly the call
// stack Thread::call_stack() would snapshot, so observers can keep a 4-byte
// id per recorded access and rebuild the full CallStack only for the rare
// accesses that become race candidates (the fast detection substrate's lazy
// capture — DESIGN.md §2).
//
// Nodes are never freed: a ContextId stays valid for the lifetime of the
// Machine, which is what lets shadow memory refer to long-gone frames.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "interp/thread.hpp"

namespace owl::interp {

class ContextTree {
 public:
  ContextTree() { nodes_.push_back(Node{}); }  // id 0 == kNoContext sentinel

  /// Interns (parent, function, call_site); repeated pushes of the same
  /// triple return the same id.
  ContextId push(ContextId parent, const ir::Function* function,
                 const ir::Instruction* call_site);

  /// Rebuilds the call stack for `leaf`, outermost first, with `innermost`
  /// as the instruction of the deepest frame — byte-for-byte what
  /// Thread::call_stack() returns when the thread's top frame has context
  /// `leaf` and is about to execute `innermost`. kNoContext yields an
  /// empty stack.
  CallStack call_stack(ContextId leaf, const ir::Instruction* innermost) const;

  /// Number of interned contexts (excluding the sentinel).
  std::size_t size() const noexcept { return nodes_.size() - 1; }

 private:
  struct Node {
    ContextId parent = kNoContext;
    const ir::Function* function = nullptr;
    const ir::Instruction* call_site = nullptr;
  };
  struct Key {
    ContextId parent;
    const ir::Function* function;
    const ir::Instruction* call_site;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = key.parent;
      h = h * 0x9E3779B97F4A7C15ull ^
          reinterpret_cast<std::uintptr_t>(key.function);
      h = h * 0x9E3779B97F4A7C15ull ^
          reinterpret_cast<std::uintptr_t>(key.call_site);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  std::vector<Node> nodes_;
  std::unordered_map<Key, ContextId, KeyHash> intern_;
};

}  // namespace owl::interp
