#include "interp/memory.hpp"

#include <cassert>

namespace owl::interp {

namespace {
Address align_down(Address addr) noexcept { return addr & ~Address{7}; }
}  // namespace

std::string_view mem_fault_name(MemFault fault) noexcept {
  switch (fault) {
    case MemFault::kNone: return "none";
    case MemFault::kNullDeref: return "null-deref";
    case MemFault::kOutOfBounds: return "out-of-bounds";
    case MemFault::kUseAfterFree: return "use-after-free";
    case MemFault::kDoubleFree: return "double-free";
    case MemFault::kBadFree: return "bad-free";
  }
  return "?";
}

Memory::Memory() : next_(kNullGuard) {}

Address Memory::allocate(ObjectKind kind, std::uint64_t cells, Word init,
                         std::string name, std::uint64_t owner_frame) {
  assert(cells > 0);
  MemObject obj;
  obj.base = next_;
  obj.cells = cells;
  obj.kind = kind;
  obj.name = std::move(name);
  obj.owner_frame = owner_frame;
  next_ += cells * 8 + 8;  // one-cell red zone between objects
  for (std::uint64_t i = 0; i < cells; ++i) {
    cells_[obj.base + i * 8] = init;
  }
  const Address base = obj.base;
  objects_.emplace(base, std::move(obj));
  return base;
}

MemFault Memory::free_heap(Address addr) {
  MemObject* obj = find_object_mutable(addr);
  if (obj == nullptr) {
    return addr < kNullGuard ? MemFault::kNullDeref : MemFault::kBadFree;
  }
  if (obj->base != addr || obj->kind != ObjectKind::kHeap) {
    return MemFault::kBadFree;
  }
  if (obj->freed) return MemFault::kDoubleFree;
  obj->freed = true;
  return MemFault::kNone;
}

void Memory::pop_frame(std::uint64_t owner_frame) {
  for (auto& [base, obj] : objects_) {
    if (obj.kind == ObjectKind::kStack && obj.owner_frame == owner_frame) {
      obj.freed = true;
    }
  }
}

MemFault Memory::load(Address addr, Word& out) const {
  addr = align_down(addr);
  if (addr < kNullGuard) return MemFault::kNullDeref;
  const MemObject* obj = find_object(addr);
  if (obj == nullptr) return MemFault::kOutOfBounds;
  out = load_raw(addr);
  if (obj->freed) return MemFault::kUseAfterFree;
  return MemFault::kNone;
}

MemFault Memory::store(Address addr, Word value) {
  addr = align_down(addr);
  if (addr < kNullGuard) return MemFault::kNullDeref;
  MemObject* obj = find_object_mutable(addr);
  if (obj == nullptr) return MemFault::kOutOfBounds;
  store_raw(addr, value);
  if (obj->freed) return MemFault::kUseAfterFree;
  return MemFault::kNone;
}

Word Memory::load_raw(Address addr) const {
  auto it = cells_.find(align_down(addr));
  return it != cells_.end() ? it->second : 0;
}

void Memory::store_raw(Address addr, Word value) {
  cells_[align_down(addr)] = value;
}

const MemObject* Memory::find_object(Address addr) const {
  auto it = objects_.upper_bound(addr);
  if (it == objects_.begin()) return nullptr;
  --it;
  return it->second.contains(addr) ? &it->second : nullptr;
}

MemObject* Memory::find_object_mutable(Address addr) {
  auto it = objects_.upper_bound(addr);
  if (it == objects_.begin()) return nullptr;
  --it;
  return it->second.contains(addr) ? &it->second : nullptr;
}

std::uint64_t Memory::cells_until_end(Address addr) const {
  const MemObject* obj = find_object(align_down(addr));
  if (obj == nullptr) return 0;
  return (obj->end() - align_down(addr)) / 8;
}

}  // namespace owl::interp
