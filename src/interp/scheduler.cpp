#include "interp/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace owl::interp {

ThreadId RoundRobinScheduler::pick(const std::vector<ThreadId>& runnable,
                                   std::uint64_t /*step*/) {
  assert(!runnable.empty());
  // First runnable id strictly greater than the last-run one, else wrap.
  for (ThreadId tid : runnable) {
    if (tid > last_) {
      last_ = tid;
      return tid;
    }
  }
  last_ = runnable.front();
  return last_;
}

ThreadId RandomScheduler::pick(const std::vector<ThreadId>& runnable,
                               std::uint64_t /*step*/) {
  assert(!runnable.empty());
  return runnable[rng_.next_below(runnable.size())];
}

PctScheduler::PctScheduler(std::uint64_t seed, unsigned depth,
                           std::uint64_t expected_steps)
    : rng_(seed) {
  // depth-1 priority change points, uniformly placed.
  for (unsigned i = 1; i < depth; ++i) {
    change_points_.push_back(rng_.next_below(std::max<std::uint64_t>(
        expected_steps, 1)));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

void PctScheduler::on_thread_created(ThreadId tid) {
  // High random base priorities; change points later assign the lowest
  // outstanding priorities (classic PCT construction).
  priority_[tid] = 1000 + rng_.next_below(1000000);
}

ThreadId PctScheduler::pick(const std::vector<ThreadId>& runnable,
                            std::uint64_t step) {
  assert(!runnable.empty());
  ThreadId best = runnable.front();
  std::uint64_t best_prio = 0;
  for (ThreadId tid : runnable) {
    auto it = priority_.find(tid);
    const std::uint64_t prio = it != priority_.end() ? it->second : 1;
    if (prio >= best_prio) {
      best_prio = prio;
      best = tid;
    }
  }
  if (next_change_ < change_points_.size() &&
      step >= change_points_[next_change_]) {
    // Demote the thread that was about to run below everyone else.
    priority_[best] = change_points_.size() - next_change_;
    ++next_change_;
  }
  return best;
}

ThreadId ReplayScheduler::pick(const std::vector<ThreadId>& runnable,
                               std::uint64_t step) {
  assert(!runnable.empty());
  while (cursor_ < script_.size()) {
    const ThreadId want = script_[cursor_];
    if (std::find(runnable.begin(), runnable.end(), want) != runnable.end()) {
      ++cursor_;
      return want;
    }
    // Scripted thread cannot run (blocked/finished); skip the entry rather
    // than deadlocking the replay.
    ++cursor_;
  }
  return fallback_.pick(runnable, step);
}

ThreadId RecordingScheduler::pick(const std::vector<ThreadId>& runnable,
                                  std::uint64_t step) {
  const ThreadId tid = inner_->pick(runnable, step);
  trace_.push_back(tid);
  return tid;
}

void RecordingScheduler::on_thread_created(ThreadId tid) {
  inner_->on_thread_created(tid);
}

ThreadId PriorityScheduler::pick(const std::vector<ThreadId>& runnable,
                                 std::uint64_t /*step*/) {
  assert(!runnable.empty());
  for (ThreadId want : order_) {
    if (std::find(runnable.begin(), runnable.end(), want) != runnable.end()) {
      return want;
    }
  }
  return runnable.front();
}

}  // namespace owl::interp
