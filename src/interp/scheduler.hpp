// Thread schedulers for the simulated machine.
//
// The schedule space is where concurrency bugs hide: the paper's Finding III
// shows attacks manifest within tens of runs once inputs (and IO timings)
// are crafted. All schedulers here are deterministic functions of their
// seed, so every manifestation is replayable.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "interp/thread.hpp"
#include "support/rng.hpp"

namespace owl::interp {

/// Strategy interface: choose which runnable thread executes next.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// `runnable` is non-empty and sorted by thread id; `step` is the global
  /// instruction count so far.
  virtual ThreadId pick(const std::vector<ThreadId>& runnable,
                        std::uint64_t step) = 0;

  /// Called when a new thread becomes schedulable.
  virtual void on_thread_created(ThreadId tid) { (void)tid; }
};

/// Cooperative round-robin — the "benign" baseline schedule. Many adhoc
/// synchronizations never misbehave under it, which is exactly why race
/// detectors driven by it miss vulnerable interleavings.
class RoundRobinScheduler final : public Scheduler {
 public:
  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;

 private:
  ThreadId last_ = 0;
};

/// Uniformly random preemption at every step.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;

 private:
  Rng rng_;
};

/// PCT (probabilistic concurrency testing): random per-thread priorities
/// plus `depth` random priority-change points. Finds depth-d bugs with
/// probability >= 1/(n * k^(d-1)); this is the exploration strategy our
/// SKI-mode kernel detector sweeps seeds over.
class PctScheduler final : public Scheduler {
 public:
  PctScheduler(std::uint64_t seed, unsigned depth,
               std::uint64_t expected_steps);

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;
  void on_thread_created(ThreadId tid) override;

 private:
  Rng rng_;
  std::unordered_map<ThreadId, std::uint64_t> priority_;
  std::vector<std::uint64_t> change_points_;  ///< sorted step indices
  std::size_t next_change_ = 0;
};

/// Replays an explicit thread-id sequence; after the script is exhausted it
/// falls back to round-robin. The dynamic verifiers use this to drive a
/// program into "the racing moment".
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<ThreadId> script)
      : script_(std::move(script)) {}

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;

 private:
  std::vector<ThreadId> script_;
  std::size_t cursor_ = 0;
  RoundRobinScheduler fallback_;
};

/// Decorator that records every pick of an inner scheduler. Feeding the
/// trace back through a ReplayScheduler reproduces the execution exactly —
/// including a bug-manifesting one — which is how a report's schedule can
/// be shipped alongside it.
class RecordingScheduler final : public Scheduler {
 public:
  /// `inner` must outlive this scheduler.
  explicit RecordingScheduler(Scheduler* inner) : inner_(inner) {}

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;
  void on_thread_created(ThreadId tid) override;

  const std::vector<ThreadId>& trace() const noexcept { return trace_; }
  /// Moves the trace out (e.g. straight into a ReplayScheduler).
  std::vector<ThreadId> take_trace() noexcept { return std::move(trace_); }

 private:
  Scheduler* inner_;
  std::vector<ThreadId> trace_;
};

/// Strict priority: always run the runnable thread the priority list ranks
/// first. The vulnerability verifier uses this to serialize "attacker
/// thread first, victim thread second" orders.
class PriorityScheduler final : public Scheduler {
 public:
  explicit PriorityScheduler(std::vector<ThreadId> order)
      : order_(std::move(order)) {}

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override;

 private:
  std::vector<ThreadId> order_;
};

}  // namespace owl::interp
