#include "checkers/sarif.hpp"

#include "support/strings.hpp"

namespace owl::checkers {

namespace {

using owl::json_quote;

std::string render_location(const BugLocation& location) {
  std::string out = "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
  out += json_quote(location.loc.valid() ? location.loc.file : "unknown");
  out += "}";
  if (location.loc.valid()) {
    out += ",\"region\":{\"startLine\":" +
           std::to_string(location.loc.line == 0 ? 1u : location.loc.line) +
           "}";
  }
  out += "}";
  if (!location.note.empty() || !location.function.empty()) {
    std::string text = location.note.empty()
                           ? "in @" + location.function
                           : "in @" + location.function + ": " + location.note;
    out += ",\"message\":{\"text\":" + json_quote(text) + "}";
  }
  out += "}";
  return out;
}

std::string render_result(const std::string& target,
                          const BugReport& report) {
  std::string out = "      {\"ruleId\":" + json_quote(report.rule_id);
  const int index = rule_index(report.rule_id);
  if (index >= 0) out += ",\"ruleIndex\":" + std::to_string(index);
  out += ",\"level\":";
  out += json_quote(std::string(severity_name(report.level)));
  out += ",\"message\":{\"text\":" + json_quote(report.message) + "}";
  out += ",\"locations\":[";
  if (!report.locations.empty()) {
    out += render_location(report.locations.front());
  }
  out += "]";
  if (report.locations.size() > 1) {
    out += ",\"relatedLocations\":[";
    for (std::size_t i = 1; i < report.locations.size(); ++i) {
      if (i > 1) out += ",";
      out += render_location(report.locations[i]);
    }
    out += "]";
  }
  out += ",\"properties\":{\"target\":" + json_quote(target) + "}}";
  return out;
}

}  // namespace

std::string render_sarif(const std::vector<SarifTarget>& targets) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\"name\": \"owl\", \"rules\": [\n";
  const auto& rules = rule_registry();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "      {\"id\":" + json_quote(std::string(rules[i].id)) +
           ",\"name\":" + json_quote(std::string(rules[i].name)) +
           ",\"shortDescription\":{\"text\":" +
           json_quote(std::string(rules[i].description)) + "}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out += "    ]}},\n";
  out += "    \"results\": [\n";
  bool first = true;
  for (const SarifTarget& target : targets) {
    if (target.reports == nullptr) continue;
    for (const BugReport& report : *target.reports) {
      if (!first) out += ",\n";
      first = false;
      out += render_result(target.name, report);
    }
  }
  if (!first) out += "\n";
  out += "    ]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

}  // namespace owl::checkers
