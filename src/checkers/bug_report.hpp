// Centralized bug reporting for the checker suite (DESIGN.md §11).
//
// Every checker deposits BugReports into one BugReportMgr; the manager owns
// the stable rule registry (id, name, description — the SARIF
// tool.driver.rules table), deterministic ordering (reports sort by rule id,
// then primary location, then message, independent of checker execution
// order or job count), and exact-duplicate collapsing. Rendering is split:
// the text form feeds core/render's details section, the SARIF form lives in
// checkers/sarif.hpp.
#pragma once

#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace owl::checkers {

enum class Severity { kError, kWarning };

std::string_view severity_name(Severity level) noexcept;

/// One code coordinate a report points at, with a human note.
struct BugLocation {
  ir::SourceLoc loc;
  std::string function;  ///< enclosing MiniIR function name
  std::string note;      ///< e.g. "lock @b while holding {@a}"
};

struct BugReport {
  std::string rule_id;  ///< stable id, e.g. "OWL-DL-001"
  Severity level = Severity::kWarning;
  std::string message;  ///< one-line description of this instance
  std::vector<BugLocation> locations;  ///< first entry = primary

  /// Deterministic ordering key (rule id, primary loc, message, notes).
  std::string sort_key() const;
  /// Text rendering used by core/render's "checker findings" section.
  std::string to_string() const;
};

/// Static rule metadata (the SARIF rules table).
struct RuleInfo {
  std::string_view id;
  std::string_view name;
  std::string_view description;
};

/// All rules the suite can emit, in stable registry order.
const std::vector<RuleInfo>& rule_registry();
/// Index of `rule_id` in rule_registry(), or -1 when unknown.
int rule_index(std::string_view rule_id);

class BugReportMgr {
 public:
  void add(BugReport report);

  /// Sorts deterministically and drops exact duplicates. Idempotent; called
  /// once after all checkers ran.
  void finalize();

  const std::vector<BugReport>& reports() const noexcept { return reports_; }
  std::vector<BugReport> take_reports() noexcept {
    return std::move(reports_);
  }

 private:
  std::vector<BugReport> reports_;
};

}  // namespace owl::checkers
