// SARIF 2.1.0 rendering of checker findings (validated in CI by
// scripts/check_sarif.py).
//
// One SARIF log with one run covers all targets of an owl_cli invocation;
// each result carries its target in a property bag. Everything about the
// output is deterministic — the rules table is the full stable registry in
// registry order, results arrive pre-sorted from BugReportMgr and are
// emitted in target input order — so SARIF files byte-diff across repeat
// runs and job counts.
#pragma once

#include <string>
#include <vector>

#include "checkers/bug_report.hpp"

namespace owl::checkers {

struct SarifTarget {
  std::string name;  ///< target name (file path or workload id)
  const std::vector<BugReport>* reports = nullptr;
};

std::string render_sarif(const std::vector<SarifTarget>& targets);

}  // namespace owl::checkers
