// Lock-usage mistakes: release-without-acquire (OWL-LM-001), double
// acquire (OWL-LM-002), and inconsistent guard sets per shared location
// (OWL-LM-003).
//
// LM-001/002 read straight off the LockFacts must-lockset: an unlock whose
// token is provably not held releases a mutex some other thread may own; a
// lock whose token is provably already held self-deadlocks (MiniIR mutexes
// are non-reentrant). LM-003 compares guard sets across all accessors of an
// escaped object: if some concurrent accessors hold a well-formed lock and
// others hold none, the lock protects nothing.
#pragma once

#include "checkers/checker.hpp"

namespace owl::checkers {

class LockMismatchChecker final : public Checker {
 public:
  std::string_view name() const override { return "lock-mismatch"; }
  void run(const AnalysisContext& ctx, BugReportMgr& mgr) override;
};

}  // namespace owl::checkers
