#include "checkers/bug_report.hpp"

#include <algorithm>

namespace owl::checkers {

std::string_view severity_name(Severity level) noexcept {
  return level == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"OWL-DL-001", "DeadlockLockOrderCycle",
       "A cycle in the static lock-order graph: threads that take these "
       "mutexes in opposite orders can block each other forever. Confirmed "
       "findings were reproduced by a directed scheduler replay."},
      {"OWL-AV-001", "AtomicitySplitCriticalSection",
       "A value read in one critical section flows into a write in a later "
       "critical section of the same mutex: a concurrent writer can "
       "interleave between the release and the re-acquire, making the "
       "read/act pair unserializable."},
      {"OWL-LM-001", "LockReleaseWithoutAcquire",
       "An unlock site does not provably hold the mutex it releases: a "
       "foreign thread's critical section can be cut short mid-flight."},
      {"OWL-LM-002", "LockDoubleAcquire",
       "A lock site already provably holds the mutex it acquires: MiniIR "
       "mutexes are non-reentrant, so this self-deadlocks."},
      {"OWL-LM-003", "InconsistentLockGuards",
       "A shared location is accessed with a lock held on some paths and "
       "with no lock on concurrent others: the guard protects nothing."},
      {"OWL-CV-001", "CondVarWaitWithoutRecheckLoop",
       "A wait (hb_acquire) outside any loop: a wakeup that races the "
       "predicate check — or a spurious one — is silently missed."},
      {"OWL-CV-002", "CondVarSignalWithoutWaiter",
       "A signal (hb_release) on a sync object no reachable thread ever "
       "waits on: the notification is lost."},
  };
  return kRules;
}

int rule_index(std::string_view rule_id) {
  const auto& rules = rule_registry();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id == rule_id) return static_cast<int>(i);
  }
  return -1;
}

std::string BugReport::sort_key() const {
  std::string key = rule_id;
  for (const BugLocation& location : locations) {
    key += "|" + location.loc.to_string() + "|" + location.function + "|" +
           location.note;
  }
  key += "|" + message;
  return key;
}

std::string BugReport::to_string() const {
  std::string out = "[" + rule_id + "] " + std::string(severity_name(level)) +
                    ": " + message + "\n";
  for (const BugLocation& location : locations) {
    out += "    at " + location.loc.to_string() + " in @" + location.function;
    if (!location.note.empty()) out += ": " + location.note;
    out += "\n";
  }
  return out;
}

void BugReportMgr::add(BugReport report) {
  reports_.push_back(std::move(report));
}

void BugReportMgr::finalize() {
  std::sort(reports_.begin(), reports_.end(),
            [](const BugReport& a, const BugReport& b) {
              return a.sort_key() < b.sort_key();
            });
  reports_.erase(std::unique(reports_.begin(), reports_.end(),
                             [](const BugReport& a, const BugReport& b) {
                               return a.sort_key() == b.sort_key();
                             }),
                 reports_.end());
}

}  // namespace owl::checkers
