#include "checkers/checker.hpp"

#include "checkers/atomicity_checker.hpp"
#include "checkers/condvar_checker.hpp"
#include "checkers/deadlock_checker.hpp"
#include "checkers/lock_mismatch_checker.hpp"
#include "support/strings.hpp"

namespace owl::checkers {

std::string CheckerOptions::canonical() const {
  if (!any()) return "off";
  std::string out;
  auto append = [&](bool on, std::string_view name) {
    if (!on) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  append(deadlock, "deadlock");
  append(atomicity, "atomicity");
  append(lock_mismatch, "lock-mismatch");
  append(condvar, "condvar");
  return out;
}

bool CheckerOptions::parse(std::string_view text, CheckerOptions& out,
                           std::string& error) {
  out = CheckerOptions{};
  if (text == "off" || text.empty()) return true;
  if (text == "all") {
    out.deadlock = out.atomicity = out.lock_mismatch = out.condvar = true;
    return true;
  }
  for (const std::string& name : owl::split(text, ',')) {
    if (name == "deadlock") {
      out.deadlock = true;
    } else if (name == "atomicity") {
      out.atomicity = true;
    } else if (name == "lock-mismatch") {
      out.lock_mismatch = true;
    } else if (name == "condvar") {
      out.condvar = true;
    } else {
      error = "unknown checker '" + name +
              "' (expected off, all, or a comma list of "
              "deadlock,atomicity,lock-mismatch,condvar)";
      return false;
    }
  }
  return true;
}

std::vector<BugReport> run_checkers(const CheckerOptions& options,
                                    const AnalysisContext& ctx) {
  std::vector<std::unique_ptr<Checker>> active;
  if (options.deadlock) active.push_back(std::make_unique<DeadlockChecker>());
  if (options.atomicity) {
    active.push_back(std::make_unique<AtomicityChecker>());
  }
  if (options.lock_mismatch) {
    active.push_back(std::make_unique<LockMismatchChecker>());
  }
  if (options.condvar) active.push_back(std::make_unique<CondVarChecker>());

  BugReportMgr mgr;
  for (const auto& checker : active) checker->run(ctx, mgr);
  mgr.finalize();
  return mgr.take_reports();
}

}  // namespace owl::checkers
