// Condition-variable misuse over MiniIR's hb_acquire/hb_release pairs
// (MiniIR has no dedicated CV opcode; wait = hb_acquire on the cv object,
// signal = hb_release — the same modeling the adhoc-sync annotator uses).
//
// OWL-CV-001: a wait outside any natural loop. The canonical CV contract is
// `while (!predicate) wait(cv)`; a straight-line wait misses wakeups that
// race the predicate check and breaks under spurious wakeups. Only fires
// when a concurrent signaler of the same object exists (otherwise the
// hb_acquire is a one-shot ordering annotation, not a CV wait).
// OWL-CV-002: a signal on an object nothing in the module ever waits on —
// the notification is lost.
#pragma once

#include "checkers/checker.hpp"

namespace owl::checkers {

class CondVarChecker final : public Checker {
 public:
  std::string_view name() const override { return "condvar"; }
  void run(const AnalysisContext& ctx, BugReportMgr& mgr) override;
};

}  // namespace owl::checkers
