// Unserializable read/act pairs split across a lock release.
//
// Flags a load guarded by mutex M whose value flows (transitive data
// dependence) into a store to the same shared location that is again
// guarded by M — but with a release of M in between. A concurrent writer of
// the location can interleave in the released window, so the two critical
// sections are not serializable as one atomic step even though every
// individual access is locked (the classic check-then-act TOCTTOU shape).
// Requires an MHP writer of the location to exist, else nothing can
// interleave and the split is harmless.
#pragma once

#include "checkers/checker.hpp"

namespace owl::checkers {

class AtomicityChecker final : public Checker {
 public:
  std::string_view name() const override { return "atomicity"; }
  void run(const AnalysisContext& ctx, BugReportMgr& mgr) override;
};

}  // namespace owl::checkers
