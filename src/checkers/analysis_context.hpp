// Shared analysis substrate for the checker suite (DESIGN.md §11).
//
// One AnalysisContext per pipeline target bundles everything a checker may
// consult: the module, the whole-module statics (points-to/escape from
// analysis::ModuleStatic, the shared analysis::LockFacts lockset/discipline
// facts the prescreen also consumes), the static MHP view exported from the
// detector's happens-before model (race::MhpInfo), and a machine factory
// for checkers that confirm candidates by directed replay (deadlock). The
// factory may be empty — checkers then degrade to static-only verdicts.
#pragma once

#include "analysis/static_info.hpp"
#include "ir/module.hpp"
#include "race/mhp.hpp"
#include "race/ski_detector.hpp"

namespace owl::checkers {

struct AnalysisContext {
  AnalysisContext(const ir::Module& module,
                  const analysis::ModuleStatic& statics,
                  race::MachineFactory machine_factory);

  const ir::Module& module;
  const analysis::ModuleStatic& statics;
  race::MhpInfo mhp;
  race::MachineFactory machine_factory;  ///< may be empty (no replay)

  const analysis::PointsTo& points_to() const noexcept {
    return statics.points_to;
  }
  const analysis::LockFacts& lock_facts() const noexcept {
    return statics.lock_facts;
  }

  /// Name of the global variable behind a points-to object id ("" when the
  /// object is not a global).
  std::string object_name(analysis::PointsTo::ObjectId id) const;
};

}  // namespace owl::checkers
