#include "checkers/condvar_checker.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/loops.hpp"

namespace owl::checkers {

namespace {

using ObjectId = analysis::PointsTo::ObjectId;

struct SyncSite {
  const ir::Instruction* instr = nullptr;
  const ir::Function* function = nullptr;
  std::vector<ObjectId> objects;  ///< sorted (points-to order)
};

bool objects_intersect(const std::vector<ObjectId>& a,
                       const std::vector<ObjectId>& b) {
  for (const ObjectId o : a) {
    if (std::binary_search(b.begin(), b.end(), o)) return true;
  }
  return false;
}

// The operand of hb_acquire/hb_release is usually the condition object
// itself (a global), for which points_to() is empty — the value IS the
// address. Fall back to the site's own object id in that case.
std::vector<ObjectId> sync_objects(const analysis::PointsTo& pt,
                                   const ir::Value* v) {
  std::vector<ObjectId> objects = pt.points_to(v);
  if (objects.empty()) {
    ObjectId id = 0;
    if (pt.id_of_site(v, id)) objects.push_back(id);
  }
  return objects;
}

}  // namespace

void CondVarChecker::run(const AnalysisContext& ctx, BugReportMgr& mgr) {
  const analysis::PointsTo& pt = ctx.points_to();

  std::vector<SyncSite> waits;
  std::vector<SyncSite> signals;
  for (const auto& f : ctx.module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const ir::Opcode op = instr->opcode();
        if (op != ir::Opcode::kHbAcquire && op != ir::Opcode::kHbRelease) {
          continue;
        }
        if (instr->operand_count() == 0) continue;
        SyncSite site{instr.get(), f.get(),
                      sync_objects(pt, instr->operand(0))};
        if (site.objects.empty()) continue;  // unknown object: no verdict
        (op == ir::Opcode::kHbAcquire ? waits : signals)
            .push_back(std::move(site));
      }
    }
  }

  // OWL-CV-001: wait without a predicate re-check loop, when a concurrent
  // signaler of the same object exists.
  std::unordered_map<const ir::Function*, std::unique_ptr<ir::LoopInfo>>
      loop_cache;
  for (const SyncSite& wait : waits) {
    const SyncSite* signal = nullptr;
    for (const SyncSite& candidate : signals) {
      if (objects_intersect(wait.objects, candidate.objects) &&
          ctx.mhp.may_happen_in_parallel(wait.function, candidate.function)) {
        signal = &candidate;
        break;
      }
    }
    if (signal == nullptr) continue;
    auto& loops = loop_cache[wait.function];
    if (!loops) loops = std::make_unique<ir::LoopInfo>(*wait.function);
    if (loops->in_loop(wait.instr)) continue;
    const std::string cv = "@" + ctx.object_name(wait.objects.front());
    BugReport report;
    report.rule_id = "OWL-CV-001";
    report.level = Severity::kWarning;
    report.message = "wait on " + cv +
                     " is not inside a predicate re-check loop; a wakeup "
                     "racing the check (or a spurious one) is missed";
    report.locations.push_back(BugLocation{
        wait.instr->loc(), wait.function->name(), "wait on " + cv});
    report.locations.push_back(BugLocation{signal->instr->loc(),
                                           signal->function->name(),
                                           "concurrent signal of " + cv});
    mgr.add(std::move(report));
  }

  // OWL-CV-002: signal on an object nothing in the module waits on.
  for (const SyncSite& signal : signals) {
    bool waiter = false;
    for (const SyncSite& wait : waits) {
      if (objects_intersect(signal.objects, wait.objects)) {
        waiter = true;
        break;
      }
    }
    if (waiter) continue;
    const std::string cv = "@" + ctx.object_name(signal.objects.front());
    BugReport report;
    report.rule_id = "OWL-CV-002";
    report.level = Severity::kWarning;
    report.message =
        "signal of " + cv + " has no reachable waiter; the notification "
        "is lost";
    report.locations.push_back(BugLocation{
        signal.instr->loc(), signal.function->name(), "signal of " + cv});
    mgr.add(std::move(report));
  }
}

}  // namespace owl::checkers
