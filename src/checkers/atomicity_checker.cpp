#include "checkers/atomicity_checker.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace owl::checkers {

namespace {

using ObjectId = analysis::PointsTo::ObjectId;

/// True when `value` transitively data-depends on the result of `target`.
bool depends_on(const ir::Value* value, const ir::Instruction* target) {
  std::vector<const ir::Value*> work{value};
  std::unordered_set<const ir::Value*> seen;
  while (!work.empty()) {
    const ir::Value* v = work.back();
    work.pop_back();
    if (!seen.insert(v).second) continue;
    if (v->kind() != ir::ValueKind::kInstruction) continue;
    const auto* instr = static_cast<const ir::Instruction*>(v);
    if (instr == target) return true;
    for (const ir::Value* operand : instr->operands()) work.push_back(operand);
  }
  return false;
}

/// Which functions may write each abstract object (plain or bulk writes).
std::unordered_map<ObjectId, std::vector<const ir::Function*>> build_writers(
    const AnalysisContext& ctx) {
  std::unordered_map<ObjectId, std::vector<const ir::Function*>> writers;
  const analysis::PointsTo& pt = ctx.points_to();
  for (const auto& f : ctx.module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const ir::Value* ptr = nullptr;
        switch (instr->opcode()) {
          case ir::Opcode::kStore:
            ptr = instr->operand(1);
            break;
          case ir::Opcode::kAtomicRMWAdd:
            ptr = instr->operand(0);
            break;
          case ir::Opcode::kStrCpy:
          case ir::Opcode::kMemCopy:
            if (instr->operand_count() >= 1) ptr = instr->operand(0);
            break;
          default:
            break;
        }
        if (ptr == nullptr) continue;
        for (const ObjectId o : pt.points_to(ptr)) {
          auto& fns = writers[o];
          if (fns.empty() || fns.back() != f.get()) fns.push_back(f.get());
        }
      }
    }
  }
  return writers;
}

}  // namespace

void AtomicityChecker::run(const AnalysisContext& ctx, BugReportMgr& mgr) {
  const analysis::LockFacts& facts = ctx.lock_facts();
  const analysis::PointsTo& pt = ctx.points_to();
  const analysis::Prescreen& prescreen = ctx.statics.prescreen;
  const auto writers = build_writers(ctx);

  auto wf_tokens = [&](const ir::Instruction* instr) {
    std::vector<ObjectId> out;
    for (const ObjectId t : facts.must_held_before(instr)) {
      if (facts.well_formed(t)) out.push_back(t);
    }
    return out;
  };

  auto mhp_writer_exists = [&](ObjectId o, const ir::Function* f) {
    auto it = writers.find(o);
    if (it == writers.end()) return false;
    for (const ir::Function* g : it->second) {
      if (ctx.mhp.may_happen_in_parallel(f, g)) return true;
    }
    return false;
  };

  for (const auto& f : ctx.module.functions()) {
    // Block-order linearization: an approximation of program order that is
    // exact for the straight-line critical sections this checker targets.
    std::vector<const ir::Instruction*> linear;
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        linear.push_back(instr.get());
      }
    }

    for (std::size_t i = 0; i < linear.size(); ++i) {
      const ir::Instruction* load = linear[i];
      if (load->opcode() != ir::Opcode::kLoad) continue;
      const std::vector<ObjectId> load_tokens = wf_tokens(load);
      if (load_tokens.empty()) continue;
      std::vector<ObjectId> load_objects;
      for (const ObjectId o : pt.points_to(load->operand(0))) {
        if (prescreen.object_escapes(o)) load_objects.push_back(o);
      }
      if (load_objects.empty()) continue;

      for (std::size_t j = i + 1; j < linear.size(); ++j) {
        const ir::Instruction* store = linear[j];
        if (store->opcode() != ir::Opcode::kStore) continue;
        // Same shared location?
        const auto& store_pts = pt.points_to(store->operand(1));
        ObjectId shared = 0;
        bool have_shared = false;
        for (const ObjectId o : load_objects) {
          if (std::binary_search(store_pts.begin(), store_pts.end(), o)) {
            shared = o;
            have_shared = true;
            break;
          }
        }
        if (!have_shared) continue;
        // Same guard on both sides?
        const std::vector<ObjectId> store_tokens = wf_tokens(store);
        ObjectId guard = 0;
        bool have_guard = false;
        for (const ObjectId t : load_tokens) {
          if (std::find(store_tokens.begin(), store_tokens.end(), t) !=
              store_tokens.end()) {
            guard = t;
            have_guard = true;
            break;
          }
        }
        if (!have_guard) continue;
        // Released in between?
        const ir::Instruction* release = nullptr;
        for (std::size_t k = i + 1; k < j && release == nullptr; ++k) {
          const ir::Instruction* mid = linear[k];
          if (mid->opcode() == ir::Opcode::kUnlock &&
              mid->operand_count() > 0) {
            ObjectId token = 0;
            if (facts.lock_token(mid->operand(0), token) && token == guard) {
              release = mid;
            }
          } else if (mid->is_call() && facts.call_may_release(*mid, guard)) {
            release = mid;
          }
        }
        if (release == nullptr) continue;
        // The written value must derive from the stale read, and a
        // concurrent writer must exist to exploit the window.
        if (!depends_on(store->operand(0), load)) continue;
        if (!mhp_writer_exists(shared, f.get())) continue;

        BugReport report;
        report.rule_id = "OWL-AV-001";
        report.level = Severity::kWarning;
        report.message = "@" + ctx.object_name(shared) + " read under @" +
                         ctx.object_name(guard) +
                         " flows into a write in a later critical section "
                         "of the same mutex";
        report.locations.push_back(
            BugLocation{load->loc(), f->name(),
                        "read of @" + ctx.object_name(shared) + " under @" +
                            ctx.object_name(guard)});
        report.locations.push_back(BugLocation{
            release->loc(), f->name(),
            "@" + ctx.object_name(guard) + " released here; a concurrent "
            "writer can interleave"});
        report.locations.push_back(
            BugLocation{store->loc(), f->name(),
                        "dependent write of @" + ctx.object_name(shared) +
                            " under re-acquired @" + ctx.object_name(guard)});
        mgr.add(std::move(report));
      }
    }
  }
}

}  // namespace owl::checkers
