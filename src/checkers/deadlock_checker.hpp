// Lock-order-cycle detection with directed replay confirmation.
//
// Builds the static lock-order graph from LockFacts (edge A -> B for every
// acquire of B while A is must-held), enumerates elementary cycles in
// canonical form, filters out cycles whose witnesses cannot run in parallel
// (MhpInfo), and — when the context carries a machine factory — attempts to
// reproduce each surviving cycle with interp::probe_deadlock. Reproduced
// cycles report as errors ("confirmed by replay"); unreproduced ones as
// warnings ("not reproduced"), because an outer gate lock or unreachable
// path may make the static cycle harmless.
#pragma once

#include "checkers/checker.hpp"

namespace owl::checkers {

class DeadlockChecker final : public Checker {
 public:
  std::string_view name() const override { return "deadlock"; }
  void run(const AnalysisContext& ctx, BugReportMgr& mgr) override;
};

}  // namespace owl::checkers
