#include "checkers/analysis_context.hpp"

namespace owl::checkers {

AnalysisContext::AnalysisContext(const ir::Module& module_in,
                                 const analysis::ModuleStatic& statics_in,
                                 race::MachineFactory machine_factory_in)
    : module(module_in),
      statics(statics_in),
      mhp(module_in, statics_in.resolved_calls),
      machine_factory(std::move(machine_factory_in)) {}

std::string AnalysisContext::object_name(
    analysis::PointsTo::ObjectId id) const {
  const auto& objects = statics.points_to.objects();
  if (id >= objects.size()) return "";
  return objects[id].site->name();
}

}  // namespace owl::checkers
