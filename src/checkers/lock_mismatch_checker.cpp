#include "checkers/lock_mismatch_checker.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace owl::checkers {

namespace {

using ObjectId = analysis::PointsTo::ObjectId;

struct AccessSite {
  const ir::Instruction* instr = nullptr;
  const ir::Function* function = nullptr;
  bool guarded = false;
};

}  // namespace

void LockMismatchChecker::run(const AnalysisContext& ctx, BugReportMgr& mgr) {
  const analysis::LockFacts& facts = ctx.lock_facts();
  const analysis::PointsTo& pt = ctx.points_to();
  const analysis::Prescreen& prescreen = ctx.statics.prescreen;

  // LM-001 / LM-002: compare each token-resolved lock site against the
  // must-held set immediately before it.
  for (const auto& site : facts.lock_sites()) {
    const auto& held = facts.must_held_before(site.instr);
    const bool holds =
        std::binary_search(held.begin(), held.end(), site.token);
    if (!site.is_acquire && !holds) {
      BugReport report;
      report.rule_id = "OWL-LM-001";
      report.level = Severity::kError;
      report.message = "unlock of @" + ctx.object_name(site.token) +
                       " which is not provably held (release without "
                       "acquire)";
      report.locations.push_back(
          BugLocation{site.instr->loc(), site.function->name(),
                      "unlock @" + ctx.object_name(site.token)});
      mgr.add(std::move(report));
    } else if (site.is_acquire && holds) {
      BugReport report;
      report.rule_id = "OWL-LM-002";
      report.level = Severity::kError;
      report.message = "lock of @" + ctx.object_name(site.token) +
                       " which is already held (self-deadlock: MiniIR "
                       "mutexes are non-reentrant)";
      report.locations.push_back(
          BugLocation{site.instr->loc(), site.function->name(),
                      "lock @" + ctx.object_name(site.token)});
      mgr.add(std::move(report));
    }
  }

  // LM-003: per escaped object, split plain accessors into guarded (some
  // well-formed token held) and unguarded; mixed sets that may run in
  // parallel mean the guard is decorative.
  std::map<ObjectId, std::vector<AccessSite>> accessors;
  for (const auto& f : ctx.module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const ir::Value* ptr = nullptr;
        if (instr->opcode() == ir::Opcode::kLoad) {
          ptr = instr->operand(0);
        } else if (instr->opcode() == ir::Opcode::kStore) {
          ptr = instr->operand(1);
        } else {
          continue;
        }
        bool guarded = false;
        for (const ObjectId t : facts.must_held_before(instr.get())) {
          if (facts.well_formed(t)) {
            guarded = true;
            break;
          }
        }
        for (const ObjectId o : pt.points_to(ptr)) {
          if (!prescreen.object_escapes(o)) continue;
          accessors[o].push_back(AccessSite{instr.get(), f.get(), guarded});
        }
      }
    }
  }
  for (const auto& [object, sites] : accessors) {
    const AccessSite* guarded = nullptr;
    for (const AccessSite& site : sites) {
      if (site.guarded) {
        guarded = &site;
        break;
      }
    }
    if (guarded == nullptr) continue;
    for (const AccessSite& site : sites) {
      if (site.guarded) continue;
      if (!ctx.mhp.may_happen_in_parallel(guarded->function, site.function)) {
        continue;
      }
      BugReport report;
      report.rule_id = "OWL-LM-003";
      report.level = Severity::kWarning;
      report.message =
          "@" + ctx.object_name(object) +
          " is accessed both with and without a lock by concurrent threads";
      report.locations.push_back(
          BugLocation{site.instr->loc(), site.function->name(),
                      "unguarded access to @" + ctx.object_name(object)});
      report.locations.push_back(
          BugLocation{guarded->instr->loc(), guarded->function->name(),
                      "guarded access to @" + ctx.object_name(object)});
      mgr.add(std::move(report));
      break;  // one finding per object keeps reports readable
    }
  }
}

}  // namespace owl::checkers
