#include "checkers/deadlock_checker.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "analysis/value_flow.hpp"
#include "interp/deadlock_probe.hpp"

namespace owl::checkers {

namespace {

using ObjectId = analysis::PointsTo::ObjectId;

struct EdgeWitness {
  const ir::Instruction* instr = nullptr;
  const ir::Function* function = nullptr;
};

// Keep exploration bounded on adversarial inputs; real lock graphs are tiny.
constexpr std::size_t kMaxCycleLength = 8;
constexpr std::size_t kMaxCycles = 16;

}  // namespace

void DeadlockChecker::run(const AnalysisContext& ctx, BugReportMgr& mgr) {
  const analysis::LockFacts& facts = ctx.lock_facts();

  // Lock-order graph: edge from -> to for every acquire of `to` while
  // `from` is must-held; first witness in module order wins (deterministic).
  std::map<std::pair<ObjectId, ObjectId>, EdgeWitness> edges;
  for (const auto& site : facts.lock_sites()) {
    if (!site.is_acquire) continue;
    for (const ObjectId held : facts.must_held_before(site.instr)) {
      if (held == site.token) continue;
      edges.try_emplace({held, site.token},
                        EdgeWitness{site.instr, site.function});
    }
  }
  // Inter-procedural edges from the value-flow module: a call made while a
  // mutex is held reaches every acquire in its transitive callees, so the
  // cycle `f: lock A; call g` / `g: lock B` vs the reverse nesting order is
  // visible even though no single function acquires both locks. Intra-
  // procedural witnesses (above) win ties — they are the more direct
  // evidence — because try_emplace keeps the first insertion.
  for (const analysis::InterprocLockEdge& e :
       analysis::interprocedural_lock_edges(ctx.module, facts,
                                            ctx.statics.resolved_calls)) {
    if (e.held == e.acquired) continue;
    edges.try_emplace({e.held, e.acquired},
                      EdgeWitness{e.acquire_site, e.caller});
  }
  if (edges.empty()) return;

  std::map<ObjectId, std::vector<ObjectId>> adjacency;
  for (const auto& [edge, witness] : edges) {
    (void)witness;
    adjacency[edge.first].push_back(edge.second);
  }

  // Elementary cycles, canonicalized by starting at the smallest token in
  // the cycle (DFS restricted to nodes >= start never emits a rotation).
  std::vector<std::vector<ObjectId>> cycles;
  std::vector<ObjectId> path;
  std::unordered_set<ObjectId> on_path;
  auto dfs = [&](auto&& self, ObjectId start, ObjectId node) -> void {
    if (cycles.size() >= kMaxCycles || path.size() >= kMaxCycleLength) return;
    path.push_back(node);
    on_path.insert(node);
    auto it = adjacency.find(node);
    if (it != adjacency.end()) {
      for (const ObjectId next : it->second) {
        if (next == start) {
          cycles.push_back(path);
        } else if (next > start && on_path.count(next) == 0) {
          self(self, start, next);
        }
      }
    }
    on_path.erase(node);
    path.pop_back();
  };
  for (const auto& [node, targets] : adjacency) {
    (void)targets;
    dfs(dfs, node, node);
  }

  for (const auto& cycle : cycles) {
    // Collect the witness per edge and require that two of the witnessing
    // functions (or one with itself) may actually run in parallel.
    std::vector<const EdgeWitness*> witnesses;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const ObjectId from = cycle[i];
      const ObjectId to = cycle[(i + 1) % cycle.size()];
      witnesses.push_back(&edges.at({from, to}));
    }
    bool concurrent = false;
    for (std::size_t i = 0; i < witnesses.size() && !concurrent; ++i) {
      for (std::size_t j = i; j < witnesses.size(); ++j) {
        if (ctx.mhp.may_happen_in_parallel(witnesses[i]->function,
                                           witnesses[j]->function)) {
          concurrent = true;
          break;
        }
      }
    }
    if (!concurrent) continue;

    std::string chain;
    for (const ObjectId token : cycle) {
      chain += "@" + ctx.object_name(token) + " -> ";
    }
    chain += "@" + ctx.object_name(cycle.front());

    // Directed replay: drive a fresh machine toward the cycle and see
    // whether it genuinely deadlocks (DESIGN.md §11 explains why static
    // cycles alone over-report: gate locks, unreachable paths).
    std::string verdict = "replay unavailable";
    bool confirmed = false;
    if (ctx.machine_factory) {
      std::vector<interp::Address> lock_addrs;
      auto machine = ctx.machine_factory();
      for (const ObjectId token : cycle) {
        lock_addrs.push_back(
            machine->global_address(ctx.object_name(token)));
      }
      const interp::DeadlockProbeResult probe =
          interp::probe_deadlock(*machine, lock_addrs);
      confirmed = probe.confirmed;
      verdict = confirmed ? "confirmed by replay" : "not reproduced by replay";
    }

    BugReport report;
    report.rule_id = "OWL-DL-001";
    report.level = confirmed ? Severity::kError : Severity::kWarning;
    report.message = "lock-order cycle " + chain + " (" + verdict + ")";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const EdgeWitness* witness = witnesses[i];
      const ObjectId from = cycle[i];
      const ObjectId to = cycle[(i + 1) % cycle.size()];
      report.locations.push_back(BugLocation{
          witness->instr->loc(), witness->function->name(),
          "lock @" + ctx.object_name(to) + " while holding @" +
              ctx.object_name(from)});
    }
    mgr.add(std::move(report));
  }
}

}  // namespace owl::checkers
