// Checker framework entry point (DESIGN.md §11).
//
// A Checker is a stateless pass over an AnalysisContext that deposits
// findings into a BugReportMgr. CheckerOptions selects which checkers run
// ("off" is the default everywhere: with no checker enabled the pipeline
// skips the stage entirely and every existing output stays byte-identical).
// run_checkers executes the enabled checkers in fixed registry order and
// returns the finalized (sorted, deduplicated) findings, so results are
// deterministic regardless of job count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "checkers/analysis_context.hpp"
#include "checkers/bug_report.hpp"

namespace owl::checkers {

class Checker {
 public:
  virtual ~Checker() = default;

  /// Stable lowercase name, also the CLI selector ("deadlock", ...).
  virtual std::string_view name() const = 0;
  virtual void run(const AnalysisContext& ctx, BugReportMgr& mgr) = 0;
};

struct CheckerOptions {
  bool deadlock = false;
  bool atomicity = false;
  bool lock_mismatch = false;
  bool condvar = false;

  bool any() const noexcept {
    return deadlock || atomicity || lock_mismatch || condvar;
  }

  /// Canonical selector string: "off", or a fixed-order comma list (what
  /// "all" expands to). Feeds the serve cache key — see
  /// serve::AnalysisOptions::canonical_blob.
  std::string canonical() const;

  /// Parses "off", "all", or a comma list of checker names. Returns false
  /// (with `error` set) on an unknown name.
  static bool parse(std::string_view text, CheckerOptions& out,
                    std::string& error);
};

/// Instantiates the enabled checkers in fixed order, runs them, finalizes.
std::vector<BugReport> run_checkers(const CheckerOptions& options,
                                    const AnalysisContext& ctx);

}  // namespace owl::checkers
