// Dynamic vulnerability verifier (paper §6.2).
//
// Takes a static exploit report (vulnerable site + the corrupted branches
// that reach it) and re-runs the program to answer: can execution actually
// reach the site and realize the attack? The paper's version asks the user
// to decide the execution order of the racing instructions and to tune
// inputs; here the "user" is automated:
//  - the exploit driver supplies the vulnerable inputs (the machine
//    factory) and an optional preferred thread ordering;
//  - when the originating race report is provided, attempts alternate
//    between serializing write-before-read, read-before-write, and free
//    random schedules — breakpoints park one racing thread until the other
//    side has executed, which is exactly the LLDB choreography the paper
//    describes.
// Hint branches are watched with their *direction*: a branch only counts
// as satisfied if it takes a side from which the vulnerable site is still
// reachable. Branches never satisfied come back as "diverged" — the §6.2
// further-input hints.
#pragma once

#include <optional>
#include <vector>

#include "race/ski_detector.hpp"  // MachineFactory
#include "support/deadline.hpp"
#include "support/fault_injector.hpp"
#include "vuln/analyzer.hpp"

namespace owl::verify {

struct VulnVerifyResult {
  bool site_reached = false;
  /// A security event fired on a site-reaching run — the attack realized.
  bool attack_realized = false;
  unsigned attempts = 0;
  /// Hint branches that never took a site-reaching direction on any attempt
  /// ("diverged branches": refine inputs to satisfy these).
  std::vector<const ir::Instruction*> diverged_branches;
  /// Security events observed on the best run.
  std::vector<interp::SecurityEvent> events;

  // --- resilience accounting ---
  /// A verification session livelocked (watchdog fired) without reaching
  /// the site.
  bool livelocked = false;
  /// The per-exploit Budget ran out before the attempts did.
  bool budget_exhausted = false;
  /// Interpreter steps spent verifying this exploit.
  std::uint64_t steps_spent = 0;
};

class VulnVerifier {
 public:
  struct Options {
    unsigned max_attempts = 12;
    std::uint64_t base_seed = 0xa77ac;
    /// Prefer running these threads first (exploit-driver ordering hint);
    /// used on attempts without race-order steering.
    std::vector<interp::ThreadId> thread_order;
    /// Watchdog: machine-run resumptions per attempt before the session is
    /// declared livelocked (zero-progress break/release cycles).
    std::uint64_t watchdog_iterations = 4096;
    /// Per-exploit verification budget; default unlimited.
    support::BudgetSpec budget;
    /// Resilience-layer fault-injection harness (may be null; not owned).
    support::FaultInjector* fault_injector = nullptr;
  };

  VulnVerifier() : VulnVerifier(Options{}) {}
  explicit VulnVerifier(Options options) : options_(std::move(options)) {}

  /// Verifies one exploit. If `race` is non-null, its racing instruction
  /// pair is used to steer the racing moment (order enforcement).
  VulnVerifyResult verify(const vuln::ExploitReport& exploit,
                          const race::MachineFactory& factory,
                          const race::RaceReport* race = nullptr) const;

 private:
  Options options_;
};

}  // namespace owl::verify
