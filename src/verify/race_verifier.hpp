// Dynamic race verifier (paper §5.2).
//
// Checks whether a reduced race report is a *real* race by catching it "in
// the racing moment": thread-specific breakpoints (our LLDB substrate) park
// each racing thread right before its racing instruction; when both are
// suspended and about to touch the same address, the race is verified and
// security hints are extracted — the racing instructions, the values about
// to be read/written, the variable's type, and whether a NULL write or an
// uninitialized read is in play.
//
// Livelock (a thread needed for progress is the suspended one) is resolved
// by temporarily releasing one triggered breakpoint, exactly as described.
// Some races cannot be reproduced on every schedule, so verification makes
// several seeded attempts before giving up (§5.2's two miss cases).
#pragma once

#include <functional>
#include <string>

#include "race/report.hpp"
#include "race/ski_detector.hpp"  // MachineFactory
#include "support/deadline.hpp"
#include "support/fault_injector.hpp"
#include "support/thread_pool.hpp"

namespace owl::verify {

struct RaceVerifyResult {
  bool verified = false;
  unsigned attempts = 0;
  /// Values captured in the racing moment.
  interp::Word value_about_to_read = 0;
  interp::Word value_about_to_write = 0;
  bool writes_null = false;        ///< NULL-pointer-deref hint
  bool reads_uninitialized = false;///< read observes a never-written cell
  std::string variable_type;       ///< static type of the racy operand
  std::string security_hint;       ///< the rendered §5.2 hint block

  // --- resilience accounting ---
  /// Times the §5.2 livelock-release rule fired (across all attempts).
  unsigned livelock_releases = 0;
  /// The session livelocked (release allowance or watchdog exhausted on an
  /// attempt) and the report was never verified.
  bool livelocked = false;
  /// The per-report Budget ran out before the attempts did.
  bool budget_exhausted = false;
  /// Interpreter steps spent verifying this report.
  std::uint64_t steps_spent = 0;
};

class RaceVerifier {
 public:
  struct Options {
    unsigned max_attempts = 8;
    std::uint64_t base_seed = 0x5eed;
    /// §5.2 release rule allowance: breakpoint releases per attempt before
    /// the attempt is declared livelocked and a fresh seed is tried.
    std::uint64_t livelock_release_after = 1;
    /// Watchdog: machine-run resumptions per attempt before the verifier
    /// session is declared livelocked (breaks zero-progress break/release
    /// cycles that never reach the release rule).
    std::uint64_t watchdog_iterations = 4096;
    /// Per-report verification budget (wall clock + interpreter steps);
    /// default unlimited.
    support::BudgetSpec budget;
    /// Resilience-layer fault-injection harness (may be null; not owned).
    support::FaultInjector* fault_injector = nullptr;
    /// Shards the seeded schedule-exploration attempts across this pool
    /// (not owned; null = explore sequentially). Each attempt is already
    /// an independent (machine, scheduler-seed) session, so they run
    /// concurrently and their outcomes are folded in attempt order —
    /// results are byte-identical to the sequential loop. Sharding only
    /// engages when the budget is unlimited and no fault injector is
    /// attached: both thread one mutable state through the attempt
    /// sequence, which would make outcomes order-dependent.
    support::ThreadPool* pool = nullptr;
  };

  RaceVerifier() : RaceVerifier(Options{}) {}
  explicit RaceVerifier(Options options) : options_(options) {}

  /// Verifies one report against fresh machines from `factory`. On success
  /// the report's `verified` flag and `security_hint` are filled in.
  RaceVerifyResult verify(race::RaceReport& report,
                          const race::MachineFactory& factory) const;

 private:
  /// Everything one seeded attempt produces; verify() folds these in
  /// attempt order so sequential and pool-sharded exploration agree.
  struct AttemptOutcome {
    bool verified = false;
    bool livelocked = false;
    bool budget_exhausted = false;
    std::uint64_t steps = 0;
    unsigned livelock_releases = 0;
    // Racing-moment captures, filled only when verified:
    interp::Word value_about_to_read = 0;
    interp::Word value_about_to_write = 0;
    bool writes_null = false;
    std::string variable_type;
    std::string security_hint;
  };

  /// One breakpoint-choreography session under seed base_seed + attempt.
  /// Charges interpreter steps to `budget` as it goes and stops early if
  /// it exhausts (the sequential path shares one budget across attempts;
  /// the sharded path hands each attempt its own unlimited one).
  AttemptOutcome run_attempt(const race::RaceReport& report,
                             const race::MachineFactory& factory,
                             unsigned attempt, support::Budget& budget) const;

  /// One CTrigger-style re-manifestation run for an atomicity report.
  AttemptOutcome run_atomicity_attempt(const race::RaceReport& report,
                                       const race::MachineFactory& factory,
                                       unsigned attempt,
                                       support::Budget& budget) const;

  /// True when the attempt loop may be sharded across options_.pool.
  bool can_shard() const noexcept {
    return options_.pool != nullptr && options_.max_attempts > 1 &&
           options_.budget.unlimited() && options_.fault_injector == nullptr;
  }

  /// Runs `attempts(i)` for every attempt index (concurrently when
  /// sharded), then folds outcomes in attempt order: accumulate
  /// accounting, stop at the first verified attempt — exactly the
  /// sequential early-exit semantics.
  RaceVerifyResult explore(
      race::RaceReport& report,
      const std::function<AttemptOutcome(unsigned, support::Budget&)>& attempt)
      const;

  /// Reproduction-based verification for atomicity-violation reports
  /// (their accesses may be lock-protected, so the breakpoint choreography
  /// does not apply; CTrigger-style re-manifestation does).
  RaceVerifyResult verify_atomicity(race::RaceReport& report,
                                    const race::MachineFactory& factory) const;

  Options options_;
};

}  // namespace owl::verify
