// Dynamic race verifier (paper §5.2).
//
// Checks whether a reduced race report is a *real* race by catching it "in
// the racing moment": thread-specific breakpoints (our LLDB substrate) park
// each racing thread right before its racing instruction; when both are
// suspended and about to touch the same address, the race is verified and
// security hints are extracted — the racing instructions, the values about
// to be read/written, the variable's type, and whether a NULL write or an
// uninitialized read is in play.
//
// Livelock (a thread needed for progress is the suspended one) is resolved
// by temporarily releasing one triggered breakpoint, exactly as described.
// Some races cannot be reproduced on every schedule, so verification makes
// several seeded attempts before giving up (§5.2's two miss cases).
#pragma once

#include <string>

#include "race/report.hpp"
#include "race/ski_detector.hpp"  // MachineFactory
#include "support/deadline.hpp"
#include "support/fault_injector.hpp"

namespace owl::verify {

struct RaceVerifyResult {
  bool verified = false;
  unsigned attempts = 0;
  /// Values captured in the racing moment.
  interp::Word value_about_to_read = 0;
  interp::Word value_about_to_write = 0;
  bool writes_null = false;        ///< NULL-pointer-deref hint
  bool reads_uninitialized = false;///< read observes a never-written cell
  std::string variable_type;       ///< static type of the racy operand
  std::string security_hint;       ///< the rendered §5.2 hint block

  // --- resilience accounting ---
  /// Times the §5.2 livelock-release rule fired (across all attempts).
  unsigned livelock_releases = 0;
  /// The session livelocked (release allowance or watchdog exhausted on an
  /// attempt) and the report was never verified.
  bool livelocked = false;
  /// The per-report Budget ran out before the attempts did.
  bool budget_exhausted = false;
  /// Interpreter steps spent verifying this report.
  std::uint64_t steps_spent = 0;
};

class RaceVerifier {
 public:
  struct Options {
    unsigned max_attempts = 8;
    std::uint64_t base_seed = 0x5eed;
    /// §5.2 release rule allowance: breakpoint releases per attempt before
    /// the attempt is declared livelocked and a fresh seed is tried.
    std::uint64_t livelock_release_after = 1;
    /// Watchdog: machine-run resumptions per attempt before the verifier
    /// session is declared livelocked (breaks zero-progress break/release
    /// cycles that never reach the release rule).
    std::uint64_t watchdog_iterations = 4096;
    /// Per-report verification budget (wall clock + interpreter steps);
    /// default unlimited.
    support::BudgetSpec budget;
    /// Resilience-layer fault-injection harness (may be null; not owned).
    support::FaultInjector* fault_injector = nullptr;
  };

  RaceVerifier() : RaceVerifier(Options{}) {}
  explicit RaceVerifier(Options options) : options_(options) {}

  /// Verifies one report against fresh machines from `factory`. On success
  /// the report's `verified` flag and `security_hint` are filled in.
  RaceVerifyResult verify(race::RaceReport& report,
                          const race::MachineFactory& factory) const;

 private:
  /// Reproduction-based verification for atomicity-violation reports
  /// (their accesses may be lock-protected, so the breakpoint choreography
  /// does not apply; CTrigger-style re-manifestation does).
  RaceVerifyResult verify_atomicity(race::RaceReport& report,
                                    const race::MachineFactory& factory) const;

  Options options_;
};

}  // namespace owl::verify
