#include "verify/race_verifier.hpp"

#include "interp/debugger.hpp"
#include "race/atomicity_detector.hpp"
#include "ir/printer.hpp"
#include "support/strings.hpp"

namespace owl::verify {
namespace {

/// Operand index holding the memory address a racing instruction is about
/// to touch; SIZE_MAX for instructions without one.
std::size_t address_operand(const ir::Instruction* instr) noexcept {
  switch (instr->opcode()) {
    case ir::Opcode::kLoad:
    case ir::Opcode::kAtomicRMWAdd:
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy:
      return 0;
    case ir::Opcode::kStore:
      return 1;
    default:
      return SIZE_MAX;
  }
}

}  // namespace

RaceVerifyResult RaceVerifier::verify(race::RaceReport& report,
                                      const race::MachineFactory& factory) const {
  RaceVerifyResult result;
  const race::AccessRecord& a = report.first;
  const race::AccessRecord& b = report.second;
  if (a.instr == nullptr || b.instr == nullptr) return result;

  if (report.kind == race::ReportKind::kAtomicityViolation) {
    return verify_atomicity(report, factory);
  }

  support::Budget budget(options_.budget);
  bool any_livelock = false;
  for (unsigned attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (budget.exhausted()) {
      result.budget_exhausted = true;
      break;
    }
    ++result.attempts;
    std::unique_ptr<interp::Machine> machine = factory();
    interp::Debugger debugger;
    machine->set_debugger(&debugger);
    machine->set_fault_injector(options_.fault_injector);

    // Thread-specific breakpoints right at the racing instructions.
    const interp::BreakpointId bp_a =
        debugger.add_breakpoint(a.instr, a.tid);
    const interp::BreakpointId bp_b =
        debugger.add_breakpoint(b.instr, b.tid);

    interp::RandomScheduler scheduler(options_.base_seed + attempt);
    bool suspended_a = false;
    bool suspended_b = false;
    bool done = false;
    std::uint64_t releases = 0;
    std::uint64_t iterations = 0;
    std::uint64_t last_steps = 0;

    while (!done) {
      if (++iterations > options_.watchdog_iterations) {
        // Watchdog: the session is cycling between break and release with
        // no hope of progress (e.g. an injected breakpoint livelock).
        any_livelock = true;
        break;
      }
      const interp::RunResult run = machine->run(scheduler);
      result.steps_spent += run.steps - last_steps;
      budget.charge_steps(run.steps - last_steps);
      last_steps = run.steps;
      if (budget.exhausted()) {
        result.budget_exhausted = true;
        break;
      }
      switch (run.reason) {
        case interp::StopReason::kBreakpoint: {
          if (run.break_id == bp_a) suspended_a = true;
          if (run.break_id == bp_b) suspended_b = true;
          if (suspended_a && suspended_b) {
            // Both threads parked: are they about to touch the same cell?
            const std::size_t ia = address_operand(a.instr);
            const std::size_t ib = address_operand(b.instr);
            if (ia == SIZE_MAX || ib == SIZE_MAX) {
              done = true;
              break;
            }
            const auto addr_a = static_cast<interp::Address>(
                machine->eval_in_thread(a.tid, a.instr->operand(ia)));
            const auto addr_b = static_cast<interp::Address>(
                machine->eval_in_thread(b.tid, b.instr->operand(ib)));
            if (addr_a == addr_b && addr_a != 0) {
              // The racing moment. Extract §5.2 security hints.
              result.verified = true;
              const race::AccessRecord& writer = a.is_write ? a : b;
              const race::AccessRecord& reader = a.is_write ? b : a;
              result.value_about_to_read =
                  machine->memory().load_raw(addr_a);
              if (writer.instr->opcode() == ir::Opcode::kStore) {
                result.value_about_to_write = machine->eval_in_thread(
                    writer.tid, writer.instr->operand(0));
              }
              result.writes_null = result.value_about_to_write == 0 &&
                                   writer.is_write;
              const interp::MemObject* obj =
                  machine->memory().find_object(addr_a);
              result.variable_type =
                  std::string(reader.instr != nullptr
                                  ? reader.instr->type().name()
                                  : "i64");
              result.security_hint = str_format(
                  "racing pair verified on %s: about to read %lld, about to "
                  "write %lld (type %s)%s",
                  obj != nullptr && !obj->name.empty() ? obj->name.c_str()
                                                        : "<anonymous>",
                  static_cast<long long>(result.value_about_to_read),
                  static_cast<long long>(result.value_about_to_write),
                  result.variable_type.c_str(),
                  result.writes_null ? " — NULL write: potential NULL "
                                       "pointer dereference"
                                     : "");
              done = true;
              break;
            }
            // Same instructions, different cells (per-element accesses):
            // release one side and keep hunting within this attempt.
            (void)machine->resume_thread(a.tid, /*skip_breakpoint_once=*/true);
            suspended_a = false;
          }
          break;
        }
        case interp::StopReason::kAllSuspended:
          // Livelock: the threads everyone waits on are the suspended ones.
          // Temporarily release one triggered breakpoint (§5.2) — but only
          // `livelock_release_after` times per attempt; past that the
          // attempt is declared livelocked and a fresh seed is tried.
          if (releases >= options_.livelock_release_after) {
            any_livelock = true;
            done = true;
            break;
          }
          if (suspended_a) {
            ++releases;
            ++result.livelock_releases;
            (void)machine->resume_thread(a.tid, true);
            suspended_a = false;
          } else if (suspended_b) {
            ++releases;
            ++result.livelock_releases;
            (void)machine->resume_thread(b.tid, true);
            suspended_b = false;
          } else {
            done = true;
          }
          break;
        case interp::StopReason::kAllFinished:
        case interp::StopReason::kDeadlock:
        case interp::StopReason::kStepBudget:
          done = true;
          break;
      }
    }

    if (result.verified) {
      report.verified = true;
      report.security_hint = result.security_hint;
      return result;
    }
    if (result.budget_exhausted) break;
  }
  result.livelocked = any_livelock && !result.verified;
  return result;
}

RaceVerifyResult RaceVerifier::verify_atomicity(
    race::RaceReport& report, const race::MachineFactory& factory) const {
  // Atomicity triples may be lock-protected access by access, so parking
  // one side would deadlock rather than expose a racing moment. Verify the
  // CTrigger way instead: re-run under fresh schedules and confirm the
  // same unserializable triple re-manifests.
  RaceVerifyResult result;
  const auto want = report.key();
  support::Budget budget(options_.budget);
  for (unsigned attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (budget.exhausted()) {
      result.budget_exhausted = true;
      break;
    }
    ++result.attempts;
    std::unique_ptr<interp::Machine> machine = factory();
    machine->set_fault_injector(options_.fault_injector);
    race::AtomicityDetector detector;
    machine->add_observer(&detector);
    interp::RandomScheduler scheduler(options_.base_seed + 31 * attempt + 5);
    const interp::RunResult run = machine->run(scheduler);
    result.steps_spent += run.steps;
    budget.charge_steps(run.steps);
    for (const race::AtomicityReport& found : detector.reports()) {
      if (found.to_race_report().key() != want) continue;
      result.verified = true;
      if (const race::AccessRecord* read = found.corrupted_read()) {
        result.value_about_to_read = read->value;
        result.variable_type =
            read->instr != nullptr ? std::string(read->instr->type().name())
                                   : std::string("i64");
      }
      result.value_about_to_write = found.remote.value;
      result.security_hint = str_format(
          "atomicity violation reproduced (%s on %s): stale local value "
          "%lld, remote wrote %lld",
          std::string(race::atomicity_pattern_name(found.pattern)).c_str(),
          found.object_name.empty() ? "<anonymous>"
                                    : found.object_name.c_str(),
          static_cast<long long>(result.value_about_to_read),
          static_cast<long long>(result.value_about_to_write));
      report.verified = true;
      report.security_hint = result.security_hint;
      return result;
    }
  }
  return result;
}

}  // namespace owl::verify
