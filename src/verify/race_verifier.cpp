#include "verify/race_verifier.hpp"

#include <vector>

#include "interp/debugger.hpp"
#include "race/atomicity_detector.hpp"
#include "ir/printer.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace owl::verify {
namespace {

/// Operand index holding the memory address a racing instruction is about
/// to touch; SIZE_MAX for instructions without one.
std::size_t address_operand(const ir::Instruction* instr) noexcept {
  switch (instr->opcode()) {
    case ir::Opcode::kLoad:
    case ir::Opcode::kAtomicRMWAdd:
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy:
      return 0;
    case ir::Opcode::kStore:
      return 1;
    default:
      return SIZE_MAX;
  }
}

}  // namespace

RaceVerifyResult RaceVerifier::explore(
    race::RaceReport& report,
    const std::function<AttemptOutcome(unsigned, support::Budget&)>& attempt)
    const {
  TRACE_SPAN("race-verify-report", "explore");
  RaceVerifyResult result;
  bool any_livelock = false;
  // Folds one attempt's outcome into the result; returns true when the
  // exploration must stop (verified, or the shared budget ran out).
  const auto fold = [&](const AttemptOutcome& out) {
    ++result.attempts;
    result.steps_spent += out.steps;
    result.livelock_releases += out.livelock_releases;
    if (out.livelocked) any_livelock = true;
    if (out.budget_exhausted) result.budget_exhausted = true;
    if (out.verified) {
      result.verified = true;
      result.value_about_to_read = out.value_about_to_read;
      result.value_about_to_write = out.value_about_to_write;
      result.writes_null = out.writes_null;
      result.variable_type = out.variable_type;
      result.security_hint = out.security_hint;
      report.verified = true;
      report.security_hint = out.security_hint;
      return true;
    }
    return result.budget_exhausted;
  };

  if (can_shard()) {
    // Every attempt runs concurrently (each is an independent machine +
    // scheduler seed), then the fold walks them in attempt order: the
    // accounting and the winning attempt are exactly what the sequential
    // loop would have produced — attempts past the first verified one
    // are wasted wall-clock, never a behavioral difference.
    std::vector<AttemptOutcome> outcomes(options_.max_attempts);
    options_.pool->parallel_for(
        options_.max_attempts, [&](std::size_t index) {
          support::Budget unlimited;
          outcomes[index] = attempt(static_cast<unsigned>(index), unlimited);
        });
    for (const AttemptOutcome& out : outcomes) {
      if (fold(out)) break;
    }
  } else {
    support::Budget budget(options_.budget);
    for (unsigned index = 0; index < options_.max_attempts; ++index) {
      if (budget.exhausted()) {
        result.budget_exhausted = true;
        break;
      }
      if (fold(attempt(index, budget))) break;
    }
  }
  result.livelocked = any_livelock && !result.verified;
  // Metrics flush from the *folded* result, never from raw attempt
  // executions: the pool-sharded path runs every attempt but folds in
  // attempt order, so these sums stay byte-identical across jobs values.
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("race_verifier.reports").inc();
  registry.counter("race_verifier.attempts").inc(result.attempts);
  registry.counter("race_verifier.livelock_releases")
      .inc(result.livelock_releases);
  if (result.verified) registry.counter("race_verifier.verified").inc();
  if (result.livelocked) registry.counter("race_verifier.livelocked").inc();
  if (result.budget_exhausted) {
    registry.counter("race_verifier.budget_exhausted").inc();
  }
  return result;
}

RaceVerifyResult RaceVerifier::verify(race::RaceReport& report,
                                      const race::MachineFactory& factory) const {
  const race::AccessRecord& a = report.first;
  const race::AccessRecord& b = report.second;
  if (a.instr == nullptr || b.instr == nullptr) return RaceVerifyResult{};

  if (report.kind == race::ReportKind::kAtomicityViolation) {
    return verify_atomicity(report, factory);
  }
  return explore(report,
                 [&](unsigned attempt, support::Budget& budget) {
                   return run_attempt(report, factory, attempt, budget);
                 });
}

RaceVerifier::AttemptOutcome RaceVerifier::run_attempt(
    const race::RaceReport& report, const race::MachineFactory& factory,
    unsigned attempt, support::Budget& budget) const {
  AttemptOutcome out;
  const race::AccessRecord& a = report.first;
  const race::AccessRecord& b = report.second;

  std::unique_ptr<interp::Machine> machine = factory();
  interp::Debugger debugger;
  machine->set_debugger(&debugger);
  machine->set_fault_injector(options_.fault_injector);

  // Thread-specific breakpoints right at the racing instructions.
  const interp::BreakpointId bp_a = debugger.add_breakpoint(a.instr, a.tid);
  const interp::BreakpointId bp_b = debugger.add_breakpoint(b.instr, b.tid);

  interp::RandomScheduler scheduler(options_.base_seed + attempt);
  bool suspended_a = false;
  bool suspended_b = false;
  bool done = false;
  std::uint64_t releases = 0;
  std::uint64_t iterations = 0;
  std::uint64_t last_steps = 0;

  while (!done) {
    if (++iterations > options_.watchdog_iterations) {
      // Watchdog: the session is cycling between break and release with
      // no hope of progress (e.g. an injected breakpoint livelock).
      out.livelocked = true;
      break;
    }
    const interp::RunResult run = machine->run(scheduler);
    out.steps += run.steps - last_steps;
    budget.charge_steps(run.steps - last_steps);
    last_steps = run.steps;
    if (budget.exhausted()) {
      out.budget_exhausted = true;
      break;
    }
    switch (run.reason) {
      case interp::StopReason::kBreakpoint: {
        if (run.break_id == bp_a) suspended_a = true;
        if (run.break_id == bp_b) suspended_b = true;
        if (suspended_a && suspended_b) {
          // Both threads parked: are they about to touch the same cell?
          const std::size_t ia = address_operand(a.instr);
          const std::size_t ib = address_operand(b.instr);
          if (ia == SIZE_MAX || ib == SIZE_MAX) {
            done = true;
            break;
          }
          const auto addr_a = static_cast<interp::Address>(
              machine->eval_in_thread(a.tid, a.instr->operand(ia)));
          const auto addr_b = static_cast<interp::Address>(
              machine->eval_in_thread(b.tid, b.instr->operand(ib)));
          if (addr_a == addr_b && addr_a != 0) {
            // The racing moment. Extract §5.2 security hints.
            out.verified = true;
            const race::AccessRecord& writer = a.is_write ? a : b;
            const race::AccessRecord& reader = a.is_write ? b : a;
            out.value_about_to_read = machine->memory().load_raw(addr_a);
            if (writer.instr->opcode() == ir::Opcode::kStore) {
              out.value_about_to_write = machine->eval_in_thread(
                  writer.tid, writer.instr->operand(0));
            }
            out.writes_null = out.value_about_to_write == 0 && writer.is_write;
            const interp::MemObject* obj =
                machine->memory().find_object(addr_a);
            out.variable_type =
                std::string(reader.instr != nullptr
                                ? reader.instr->type().name()
                                : "i64");
            out.security_hint = str_format(
                "racing pair verified on %s: about to read %lld, about to "
                "write %lld (type %s)%s",
                obj != nullptr && !obj->name.empty() ? obj->name.c_str()
                                                      : "<anonymous>",
                static_cast<long long>(out.value_about_to_read),
                static_cast<long long>(out.value_about_to_write),
                out.variable_type.c_str(),
                out.writes_null ? " — NULL write: potential NULL "
                                  "pointer dereference"
                                : "");
            done = true;
            break;
          }
          // Same instructions, different cells (per-element accesses):
          // release one side and keep hunting within this attempt.
          (void)machine->resume_thread(a.tid, /*skip_breakpoint_once=*/true);
          suspended_a = false;
        }
        break;
      }
      case interp::StopReason::kAllSuspended:
        // Livelock: the threads everyone waits on are the suspended ones.
        // Temporarily release one triggered breakpoint (§5.2) — but only
        // `livelock_release_after` times per attempt; past that the
        // attempt is declared livelocked and a fresh seed is tried.
        if (releases >= options_.livelock_release_after) {
          out.livelocked = true;
          done = true;
          break;
        }
        if (suspended_a) {
          ++releases;
          ++out.livelock_releases;
          (void)machine->resume_thread(a.tid, true);
          suspended_a = false;
        } else if (suspended_b) {
          ++releases;
          ++out.livelock_releases;
          (void)machine->resume_thread(b.tid, true);
          suspended_b = false;
        } else {
          done = true;
        }
        break;
      case interp::StopReason::kAllFinished:
      case interp::StopReason::kDeadlock:
      case interp::StopReason::kStepBudget:
        done = true;
        break;
    }
  }
  return out;
}

RaceVerifyResult RaceVerifier::verify_atomicity(
    race::RaceReport& report, const race::MachineFactory& factory) const {
  // Atomicity triples may be lock-protected access by access, so parking
  // one side would deadlock rather than expose a racing moment. Verify the
  // CTrigger way instead: re-run under fresh schedules and confirm the
  // same unserializable triple re-manifests.
  return explore(report, [&](unsigned attempt, support::Budget& budget) {
    return run_atomicity_attempt(report, factory, attempt, budget);
  });
}

RaceVerifier::AttemptOutcome RaceVerifier::run_atomicity_attempt(
    const race::RaceReport& report, const race::MachineFactory& factory,
    unsigned attempt, support::Budget& budget) const {
  AttemptOutcome out;
  const auto want = report.key();
  std::unique_ptr<interp::Machine> machine = factory();
  machine->set_fault_injector(options_.fault_injector);
  race::AtomicityDetector detector;
  machine->add_observer(&detector);
  interp::RandomScheduler scheduler(options_.base_seed + 31 * attempt + 5);
  const interp::RunResult run = machine->run(scheduler);
  out.steps = run.steps;
  budget.charge_steps(run.steps);
  for (const race::AtomicityReport& found : detector.reports()) {
    if (found.race_key() != want) continue;
    out.verified = true;
    if (const race::AccessRecord* read = found.corrupted_read()) {
      out.value_about_to_read = read->value;
      out.variable_type =
          read->instr != nullptr ? std::string(read->instr->type().name())
                                 : std::string("i64");
    }
    out.value_about_to_write = found.remote.value;
    out.security_hint = str_format(
        "atomicity violation reproduced (%s on %s): stale local value "
        "%lld, remote wrote %lld",
        std::string(race::atomicity_pattern_name(found.pattern)).c_str(),
        found.object_name.empty() ? "<anonymous>"
                                  : found.object_name.c_str(),
        static_cast<long long>(out.value_about_to_read),
        static_cast<long long>(out.value_about_to_write));
    break;
  }
  return out;
}

}  // namespace owl::verify
