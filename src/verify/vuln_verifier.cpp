#include "verify/vuln_verifier.hpp"

#include <unordered_map>
#include <unordered_set>

#include "interp/debugger.hpp"
#include "ir/cfg.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace owl::verify {
namespace {

/// Targets of `branch` from which `site` is still reachable inside the same
/// function (a branch hit only "counts" when it goes this way). Branches in
/// other functions always count — cross-function reachability is what the
/// call-stack-directed analysis already established.
std::unordered_set<const ir::BasicBlock*> site_reaching_targets(
    const ir::Instruction* branch, const ir::Instruction* site) {
  std::unordered_set<const ir::BasicBlock*> good;
  if (branch == nullptr || site == nullptr ||
      branch->function() != site->function()) {
    for (const ir::BasicBlock* t : branch->targets()) good.insert(t);
    return good;
  }
  for (const ir::BasicBlock* start : branch->targets()) {
    std::unordered_set<const ir::BasicBlock*> seen;
    std::vector<const ir::BasicBlock*> work{start};
    bool reaches = false;
    while (!work.empty() && !reaches) {
      const ir::BasicBlock* bb = work.back();
      work.pop_back();
      if (!seen.insert(bb).second) continue;
      if (bb == site->parent()) {
        reaches = true;
        break;
      }
      for (ir::BasicBlock* s : bb->successors()) work.push_back(s);
    }
    if (reaches) good.insert(start);
  }
  return good;
}

enum class Steering { kWriteFirst, kReadFirst, kFree };

}  // namespace

VulnVerifyResult VulnVerifier::verify(const vuln::ExploitReport& exploit,
                                      const race::MachineFactory& factory,
                                      const race::RaceReport* race) const {
  TRACE_SPAN("vuln-verify-session", "exploit");
  VulnVerifyResult result;
  if (exploit.site == nullptr) return result;
  support::metrics().counter("vuln_verifier.sessions").inc();

  // Precompute the site-reaching direction of every hint branch.
  std::unordered_map<const ir::Instruction*,
                     std::unordered_set<const ir::BasicBlock*>>
      good_targets;
  for (const ir::Instruction* br : exploit.branches) {
    good_targets.emplace(br, site_reaching_targets(br, exploit.site));
  }
  std::unordered_set<const ir::Instruction*> branches_satisfied;

  const race::AccessRecord* racy_read =
      race != nullptr ? race->read_side() : nullptr;
  const race::AccessRecord* racy_write =
      race != nullptr ? race->write_side() : nullptr;
  const bool can_steer = racy_read != nullptr && racy_write != nullptr &&
                         racy_read->instr != nullptr &&
                         racy_write->instr != nullptr &&
                         racy_read->tid != racy_write->tid;

  support::Budget budget(options_.budget);
  bool any_livelock = false;
  for (unsigned attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (budget.exhausted()) {
      result.budget_exhausted = true;
      break;
    }
    ++result.attempts;
    Steering steering = Steering::kFree;
    if (can_steer) {
      // Alternate the racing-instruction order across attempts (§6.2's
      // "decide the execution order"), keeping every third attempt free.
      steering = attempt % 3 == 0   ? Steering::kWriteFirst
                 : attempt % 3 == 1 ? Steering::kReadFirst
                                    : Steering::kFree;
    }

    std::unique_ptr<interp::Machine> machine = factory();
    interp::Debugger debugger;
    machine->set_debugger(&debugger);
    machine->set_fault_injector(options_.fault_injector);

    const interp::BreakpointId site_bp = debugger.add_breakpoint(exploit.site);
    std::unordered_map<interp::BreakpointId, const ir::Instruction*>
        branch_bps;
    for (const ir::Instruction* br : exploit.branches) {
      branch_bps.emplace(debugger.add_breakpoint(br), br);
    }

    interp::BreakpointId first_bp = 0;
    interp::BreakpointId second_bp = 0;
    interp::ThreadId second_tid = 0;
    if (steering != Steering::kFree) {
      // "first" must execute before "second" is allowed past its park.
      const race::AccessRecord* first =
          steering == Steering::kWriteFirst ? racy_write : racy_read;
      const race::AccessRecord* second =
          steering == Steering::kWriteFirst ? racy_read : racy_write;
      first_bp = debugger.add_breakpoint(first->instr, first->tid);
      second_bp = debugger.add_breakpoint(second->instr, second->tid);
      second_tid = second->tid;
    }

    std::unique_ptr<interp::Scheduler> scheduler;
    if (steering == Steering::kFree && !options_.thread_order.empty() &&
        attempt % 2 == 0) {
      scheduler =
          std::make_unique<interp::PriorityScheduler>(options_.thread_order);
    } else {
      scheduler = std::make_unique<interp::RandomScheduler>(
          options_.base_seed + attempt);
    }

    bool reached_this_run = false;
    bool first_done = steering == Steering::kFree;
    bool second_parked = false;
    bool done = false;
    std::uint64_t iterations = 0;
    std::uint64_t last_steps = 0;
    while (!done) {
      if (++iterations > options_.watchdog_iterations) {
        // Watchdog: a zero-progress break/release cycle (e.g. an injected
        // breakpoint livelock) — abandon the attempt.
        any_livelock = true;
        break;
      }
      const interp::RunResult run = machine->run(*scheduler);
      result.steps_spent += run.steps - last_steps;
      budget.charge_steps(run.steps - last_steps);
      last_steps = run.steps;
      if (budget.exhausted()) {
        result.budget_exhausted = true;
        break;
      }
      switch (run.reason) {
        case interp::StopReason::kBreakpoint: {
          if (run.break_id == site_bp) {
            reached_this_run = true;
          } else if (auto it = branch_bps.find(run.break_id);
                     it != branch_bps.end()) {
            // Record the direction the branch is about to take.
            const ir::Instruction* br = it->second;
            if (run.break_thread.has_value() && br->operand_count() == 1) {
              const interp::Word cond = machine->eval_in_thread(
                  *run.break_thread, br->operand(0));
              const ir::BasicBlock* taken =
                  cond != 0 ? br->targets()[0] : br->targets()[1];
              if (good_targets.at(br).contains(taken)) {
                branches_satisfied.insert(br);
              }
            }
          } else if (run.break_id == second_bp && !first_done) {
            // Park the second racing instruction until the first executes.
            second_parked = true;
            break;  // leave suspended
          } else if (run.break_id == first_bp) {
            first_done = true;
            debugger.set_enabled(second_bp, false);
            if (second_parked) {
              (void)machine->resume_thread(second_tid, true);
              second_parked = false;
            }
          }
          if (run.break_thread.has_value() &&
              machine->thread(*run.break_thread)->state() ==
                  interp::ThreadState::kSuspended &&
              !(run.break_id == second_bp && !first_done)) {
            (void)machine->resume_thread(*run.break_thread, true);
          }
          break;
        }
        case interp::StopReason::kAllSuspended:
          // The parked racing thread blocks everyone else: give up on the
          // steering for this attempt (the §5.2 livelock release rule).
          for (const auto& t : machine->threads()) {
            if (t->state() == interp::ThreadState::kSuspended) {
              (void)machine->resume_thread(t->id(), true);
              break;
            }
          }
          first_done = true;
          debugger.set_enabled(second_bp, false);
          second_parked = false;
          break;
        case interp::StopReason::kAllFinished:
        case interp::StopReason::kDeadlock:
        case interp::StopReason::kStepBudget:
          done = true;
          break;
      }
    }

    if (reached_this_run) {
      result.site_reached = true;
      bool realized = false;
      for (const interp::SecurityEvent& event : machine->security_events()) {
        if (event.kind != interp::SecurityEventKind::kDeadlock) {
          realized = true;
          break;
        }
      }
      if (realized || result.events.empty()) {
        result.events = machine->security_events();
      }
      if (realized) {
        result.attack_realized = true;
        break;  // reached the site AND observed the consequence
      }
      // Site reached but no consequence yet: keep exploring schedules.
    }
    if (result.budget_exhausted) break;
  }

  result.livelocked = any_livelock && !result.site_reached;
  if (!result.site_reached) {
    for (const ir::Instruction* br : exploit.branches) {
      if (!branches_satisfied.contains(br)) {
        result.diverged_branches.push_back(br);
      }
    }
  }
  // Flushed from the final result so the sums depend only on outcomes, not
  // on how this session's schedules happened to be explored.
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("vuln_verifier.attempts").inc(result.attempts);
  if (result.site_reached) {
    registry.counter("vuln_verifier.site_reached").inc();
  }
  if (result.attack_realized) {
    registry.counter("vuln_verifier.attack_realized").inc();
  }
  if (result.livelocked) registry.counter("vuln_verifier.livelocked").inc();
  if (result.budget_exhausted) {
    registry.counter("vuln_verifier.budget_exhausted").inc();
  }
  return result;
}

}  // namespace owl::verify
