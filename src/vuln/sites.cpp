#include "vuln/sites.hpp"

namespace owl::vuln {

std::string_view site_type_name(SiteType type) noexcept {
  switch (type) {
    case SiteType::kMemoryOp: return "memory-operation";
    case SiteType::kNullPtrDeref: return "null-pointer-dereference";
    case SiteType::kNullFuncPtrDeref: return "null-function-pointer-deref";
    case SiteType::kPrivilegeOp: return "privilege-operation";
    case SiteType::kFileOp: return "file-operation";
    case SiteType::kProcessFork: return "process-forking";
    case SiteType::kPointerAssign: return "pointer-assignment";
    case SiteType::kCustom: return "custom-site";
  }
  return "?";
}

std::optional<SiteType> classify_site(const ir::Instruction& instr) noexcept {
  switch (instr.opcode()) {
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy:
    case ir::Opcode::kFree:  // double frees are memory-operation attacks
      return SiteType::kMemoryOp;
    case ir::Opcode::kCallPtr:
      return SiteType::kNullFuncPtrDeref;
    case ir::Opcode::kSetUid:
      return SiteType::kPrivilegeOp;
    case ir::Opcode::kFileAccess:
    case ir::Opcode::kFileOpen:
    case ir::Opcode::kFileWrite:
      return SiteType::kFileOp;
    case ir::Opcode::kFork:
    case ir::Opcode::kEval:
      return SiteType::kProcessFork;
    case ir::Opcode::kStore:
      // Pointer assignments redirect later dereferences; scalar stores are
      // too common to report.
      if (instr.operand_count() > 0 && instr.operand(0)->type().is_ptr()) {
        return SiteType::kPointerAssign;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

std::size_t pointer_operand_index(const ir::Instruction& instr) noexcept {
  switch (instr.opcode()) {
    case ir::Opcode::kLoad:
    case ir::Opcode::kCallPtr:
      return 0;
    case ir::Opcode::kStore:
      return 1;
    default:
      return SIZE_MAX;
  }
}

std::optional<SiteType> classify_pointer_deref(
    const ir::Instruction& instr, bool pointer_operand_corrupted) noexcept {
  if (!pointer_operand_corrupted) return std::nullopt;
  switch (instr.opcode()) {
    case ir::Opcode::kLoad:
    case ir::Opcode::kStore:
      return SiteType::kNullPtrDeref;
    default:
      return std::nullopt;
  }
}

}  // namespace owl::vuln
