#include "vuln/control_dep.hpp"

namespace owl::vuln {

ControlDependence::ControlDependence(const ir::Function& function) {
  const ir::Cfg cfg(function);
  const ir::PostDominatorTree pdom(cfg);

  // For every branch edge A->S: every block on the post-dominator path from
  // S up to (exclusive) ipdom(A) is control dependent on A.
  for (const auto& bb : function.blocks()) {
    const ir::Instruction* term = bb->terminator();
    if (term == nullptr || !term->is_branch()) continue;
    const ir::BasicBlock* a = bb.get();
    const ir::BasicBlock* stop = pdom.ipdom(a);
    for (const ir::BasicBlock* s : cfg.successors(a)) {
      const ir::BasicBlock* walk = s;
      // Guard against irreducible shapes with a step bound.
      std::size_t guard = function.blocks().size() + 1;
      while (walk != nullptr && walk != stop && guard-- > 0) {
        deps_[walk].insert(a);
        if (walk == a) break;  // self-loop: the branch controls itself
        walk = pdom.ipdom(walk);
      }
    }
  }
}

bool ControlDependence::block_depends(
    const ir::BasicBlock* block, const ir::BasicBlock* branch_block) const {
  auto it = deps_.find(block);
  return it != deps_.end() && it->second.contains(branch_block);
}

bool ControlDependence::depends(const ir::Instruction* instr,
                                const ir::Instruction* branch) const {
  if (instr == nullptr || branch == nullptr || !branch->is_branch()) {
    return false;
  }
  return block_depends(instr->parent(), branch->parent());
}

const std::unordered_set<const ir::BasicBlock*>& ControlDependence::controllers(
    const ir::BasicBlock* block) const {
  auto it = deps_.find(block);
  return it != deps_.end() ? it->second : empty_;
}

}  // namespace owl::vuln
