// Vulnerable-input-hint rendering (the paper's Fig. 5 output format).
//
// OWL does not generate concrete inputs (the paper delegates that to
// symbolic execution); it prints the corrupted branches and the vulnerable
// site so a developer — or our exploit drivers — can infer which inputs
// steer execution down the vulnerable path.
#pragma once

#include <string>

#include "vuln/analyzer.hpp"

namespace owl::vuln {

/// One exploit hint, e.g. for the Libsafe attack:
///   ---- Ctrl Dependent Vulnerability ----
///   br %t5, overflow, do_copy  (intercept.c:164)
///   Vulnerable Site Location: strcpy (intercept.c:165)
std::string render_hint(const ExploitReport& exploit);

/// All hints of an analysis plus its cost line.
std::string render_analysis(const VulnAnalysis& analysis);

}  // namespace owl::vuln
