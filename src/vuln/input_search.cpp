#include "vuln/input_search.hpp"

#include <unordered_map>
#include <unordered_set>

#include "interp/debugger.hpp"
#include "support/rng.hpp"

namespace owl::vuln {
namespace {

/// Targets of `branch` from which `site` remains reachable (same rule as
/// the dynamic vulnerability verifier's direction tracking).
std::unordered_set<const ir::BasicBlock*> site_reaching_targets(
    const ir::Instruction* branch, const ir::Instruction* site) {
  std::unordered_set<const ir::BasicBlock*> good;
  if (branch == nullptr || site == nullptr ||
      branch->function() != site->function()) {
    for (const ir::BasicBlock* t : branch->targets()) good.insert(t);
    return good;
  }
  for (const ir::BasicBlock* start : branch->targets()) {
    std::unordered_set<const ir::BasicBlock*> seen;
    std::vector<const ir::BasicBlock*> work{start};
    bool reaches = false;
    while (!work.empty() && !reaches) {
      const ir::BasicBlock* bb = work.back();
      work.pop_back();
      if (!seen.insert(bb).second) continue;
      if (bb == site->parent()) {
        reaches = true;
        break;
      }
      for (ir::BasicBlock* s : bb->successors()) work.push_back(s);
    }
    if (reaches) good.insert(start);
  }
  return good;
}

struct Probe {
  unsigned branches_satisfied = 0;
  bool site_reached = false;
  bool attack_event = false;
};

/// One instrumented run: which hint branches took a site-reaching
/// direction, was the site reached, did a consequence fire.
Probe probe_run(const ExploitReport& exploit,
                const MachineWithInputs& factory,
                const std::vector<interp::Word>& inputs,
                std::uint64_t schedule_seed) {
  Probe probe;
  std::unique_ptr<interp::Machine> machine = factory(inputs);
  interp::Debugger debugger;
  machine->set_debugger(&debugger);

  const interp::BreakpointId site_bp = debugger.add_breakpoint(exploit.site);
  std::unordered_map<interp::BreakpointId, const ir::Instruction*> branch_bps;
  std::unordered_map<const ir::Instruction*,
                     std::unordered_set<const ir::BasicBlock*>>
      good;
  for (const ir::Instruction* br : exploit.branches) {
    branch_bps.emplace(debugger.add_breakpoint(br), br);
    good.emplace(br, site_reaching_targets(br, exploit.site));
  }
  std::unordered_set<const ir::Instruction*> satisfied;

  interp::RandomScheduler scheduler(schedule_seed);
  bool done = false;
  while (!done) {
    const interp::RunResult run = machine->run(scheduler);
    switch (run.reason) {
      case interp::StopReason::kBreakpoint: {
        if (run.break_id == site_bp) {
          probe.site_reached = true;
        } else if (auto it = branch_bps.find(run.break_id);
                   it != branch_bps.end()) {
          const ir::Instruction* br = it->second;
          if (run.break_thread.has_value() && br->operand_count() == 1) {
            const interp::Word cond =
                machine->eval_in_thread(*run.break_thread, br->operand(0));
            const ir::BasicBlock* taken =
                cond != 0 ? br->targets()[0] : br->targets()[1];
            if (good.at(br).contains(taken)) satisfied.insert(br);
          }
        }
        if (run.break_thread.has_value()) {
          (void)machine->resume_thread(*run.break_thread, true);
        }
        break;
      }
      case interp::StopReason::kAllSuspended:
        for (const auto& t : machine->threads()) {
          if (t->state() == interp::ThreadState::kSuspended) {
            (void)machine->resume_thread(t->id(), true);
            break;
          }
        }
        break;
      case interp::StopReason::kAllFinished:
      case interp::StopReason::kDeadlock:
      case interp::StopReason::kStepBudget:
        done = true;
        break;
    }
  }

  probe.branches_satisfied = static_cast<unsigned>(satisfied.size());
  for (const interp::SecurityEvent& event : machine->security_events()) {
    if (event.kind != interp::SecurityEventKind::kDeadlock) {
      probe.attack_event = true;
      break;
    }
  }
  return probe;
}

}  // namespace

InputSearchResult search_vulnerable_inputs(const ExploitReport& exploit,
                                           const MachineWithInputs& factory,
                                           std::vector<interp::Word> base_inputs,
                                           const InputSearchOptions& options) {
  InputSearchResult result;
  if (exploit.site == nullptr || base_inputs.empty()) {
    result.inputs = std::move(base_inputs);
    return result;
  }

  Rng rng(options.seed);
  const auto score_of = [&](const std::vector<interp::Word>& inputs,
                            bool& attack, bool& site) {
    double score = 0.0;
    attack = false;
    site = false;
    for (unsigned k = 0; k < options.seeds_per_eval; ++k) {
      const Probe probe =
          probe_run(exploit, factory, inputs, options.seed + 977 * k + 1);
      ++result.evaluations;
      score += probe.branches_satisfied * 10.0;
      if (probe.site_reached) {
        score += 100.0;
        site = true;
      }
      if (probe.attack_event) {
        score += 1000.0;
        attack = true;
      }
    }
    return score;
  };

  std::vector<interp::Word> current = std::move(base_inputs);
  bool attack = false;
  bool site = false;
  double current_score = score_of(current, attack, site);
  result.site_reached = site;
  if (attack) {
    result.attack_found = true;
    result.inputs = std::move(current);
    result.best_score = current_score;
    return result;
  }

  for (unsigned round = 0; round < options.max_rounds; ++round) {
    ++result.rounds_used;
    std::vector<interp::Word> candidate = current;
    // Mutate one position (occasionally two) from the value pool.
    const unsigned mutations = rng.chance(1, 4) ? 2 : 1;
    for (unsigned mutation = 0; mutation < mutations; ++mutation) {
      const std::size_t index = rng.next_below(candidate.size());
      candidate[index] = options.candidates[rng.next_below(
          options.candidates.size())];
    }
    bool cand_attack = false;
    bool cand_site = false;
    const double cand_score = score_of(candidate, cand_attack, cand_site);
    if (cand_score > current_score) {
      current = std::move(candidate);
      current_score = cand_score;
      result.site_reached |= cand_site;
      if (cand_attack) {
        result.attack_found = true;
        break;
      }
    }
  }

  result.inputs = std::move(current);
  result.best_score = current_score;
  return result;
}

}  // namespace owl::vuln
