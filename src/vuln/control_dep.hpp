// Control-dependence analysis (Ferrante–Ottenstein–Warren via post-
// dominators). Algorithm 1's "i is control dependent on cbr" test.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "ir/cfg.hpp"
#include "ir/dominators.hpp"

namespace owl::vuln {

class ControlDependence {
 public:
  explicit ControlDependence(const ir::Function& function);

  /// True iff executing `block` is contingent on the outcome of the branch
  /// terminating `branch_block` (classic CD: block post-dominates one
  /// successor path of the branch but not the branch itself).
  bool block_depends(const ir::BasicBlock* block,
                     const ir::BasicBlock* branch_block) const;

  /// Instruction-level convenience: does `instr` control-depend on `branch`?
  bool depends(const ir::Instruction* instr,
               const ir::Instruction* branch) const;

  /// All branch blocks `block` is control dependent on.
  const std::unordered_set<const ir::BasicBlock*>& controllers(
      const ir::BasicBlock* block) const;

 private:
  std::unordered_map<const ir::BasicBlock*,
                     std::unordered_set<const ir::BasicBlock*>>
      deps_;  // block -> branch blocks it depends on
  std::unordered_set<const ir::BasicBlock*> empty_;
};

}  // namespace owl::vuln
