#include "vuln/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "analysis/value_flow.hpp"
#include "ir/callgraph.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace owl::vuln {

std::string_view dep_kind_name(DepKind kind) noexcept {
  return kind == DepKind::kControl ? "control-dependent" : "data-dependent";
}

VulnerabilityAnalyzer::VulnerabilityAnalyzer(const ir::Module& module,
                                             Options options)
    : module_(&module), options_(options) {}

const ControlDependence& VulnerabilityAnalyzer::control_dep(
    const ir::Function* function) const {
  auto it = cd_cache_.find(function);
  if (it == cd_cache_.end()) {
    it = cd_cache_
             .emplace(function, std::make_unique<ControlDependence>(*function))
             .first;
  }
  return *it->second;
}

namespace {

/// The walking state of one analyze_from() call (Algorithm 1's globals).
class Walker {
 public:
  Walker(const VulnerabilityAnalyzer::Options& options,
         const std::function<const ControlDependence&(const ir::Function*)>&
             cd_provider)
      : options_(options), cd_(cd_provider) {}

  VulnAnalysis result;

  void mark_corrupted(const ir::Value* value, const ir::Value* parent) {
    if (corrupted_.insert(value).second && parent != nullptr) {
      parent_[value] = parent;
    }
  }
  bool is_corrupted(const ir::Value* value) const {
    return corrupted_.contains(value);
  }

  /// Analyzes `function` starting at (`block`, `index`); returns true if a
  /// return value of the function is (data- or control-)corrupted.
  bool detect(const ir::Function* function, const ir::BasicBlock* block,
              std::size_t index, bool ctrl_in, std::size_t depth) {
    if (depth > options_.max_call_depth) return false;
    if (result.stats.instructions_visited >=
        options_.max_visited_instructions) {
      return false;
    }
    if (!on_path_.insert(function).second) return false;  // recursion guard
    ++result.stats.functions_visited;

    const ControlDependence& cd = cd_(function);

    // Collect the forward-reachable instruction sequence once: the start
    // block from `index`, then every block reachable from it.
    std::vector<const ir::Instruction*> order;
    {
      std::unordered_set<const ir::BasicBlock*> seen{block};
      for (std::size_t i = index; i < block->size(); ++i) {
        order.push_back(block->instructions()[i].get());
      }
      std::vector<const ir::BasicBlock*> work;
      for (const ir::BasicBlock* s : block->successors()) work.push_back(s);
      while (!work.empty()) {
        const ir::BasicBlock* bb = work.back();
        work.pop_back();
        if (!seen.insert(bb).second) continue;
        for (const auto& instr : bb->instructions()) {
          order.push_back(instr.get());
        }
        for (const ir::BasicBlock* s : bb->successors()) work.push_back(s);
      }
    }

    // Fixpoint over the sequence (loops flow corruption backwards in the
    // listing order, so iterate until stable).
    std::vector<const ir::Instruction*> local_brs;
    bool ret_corrupted = false;
    bool changed = true;
    int passes = 0;
    while (changed && passes++ < 8) {
      changed = false;
      for (const ir::Instruction* instr : order) {
        ++result.stats.instructions_visited;
        if (process(function, cd, instr, local_brs, ctrl_in, depth, changed,
                    ret_corrupted)) {
          changed = true;
        }
      }
    }

    on_path_.erase(function);
    return ret_corrupted;
  }

  /// Memory-corrupted readers discovered since the last call, in value-flow
  /// node order (module declaration order). Each reader is handed out once;
  /// the driver re-runs detect() from it so corruption surfacing in
  /// functions the register walk never visits still reaches the site scan.
  std::vector<const ir::Instruction*> take_mem_seeds() {
    std::vector<const ir::Instruction*> seeds = std::move(mem_seeds_);
    mem_seeds_.clear();
    if (options_.value_flow != nullptr) {
      std::sort(seeds.begin(), seeds.end(),
                [this](const ir::Instruction* a, const ir::Instruction* b) {
                  std::size_t ia = 0;
                  std::size_t ib = 0;
                  options_.value_flow->node_index(a, ia);
                  options_.value_flow->node_index(b, ib);
                  return ia < ib;
                });
    }
    return seeds;
  }

 private:
  /// Handles one instruction; returns true if state grew.
  bool process(const ir::Function* function, const ControlDependence& cd,
               const ir::Instruction* instr,
               std::vector<const ir::Instruction*>& local_brs, bool ctrl_in,
               std::size_t depth, bool& /*changed*/, bool& ret_corrupted) {
    bool grew = false;

    // Control context: inherited from the caller, or via a local corrupted
    // branch this instruction depends on.
    const ir::Instruction* controlling = nullptr;
    if (options_.track_control_flow) {
      for (const ir::Instruction* cbr : local_brs) {
        if (cd.depends(instr, cbr)) {
          controlling = cbr;
          break;
        }
      }
    }
    const bool ctrl_here =
        options_.track_control_flow && (ctrl_in || controlling != nullptr);

    // Vulnerable site under corrupted control flow (Fig. 1 line 165,
    // Fig. 6 line 347).
    if (ctrl_here) {
      if (auto type = classify_site(*instr)) {
        grew |= report(instr, *type, DepKind::kControl, function, controlling,
                       &cd, &local_brs);
      }
      if (const CustomSite* custom = match_custom(instr)) {
        grew |= report(instr, SiteType::kCustom, DepKind::kControl, function,
                       controlling, &cd, &local_brs, custom->name);
      }
    }

    // Data flow.
    const ir::Value* tainting = nullptr;
    for (const ir::Value* op : instr->operands()) {
      if (is_corrupted(op)) {
        tainting = op;
        break;
      }
    }
    if (tainting == nullptr) {
      for (const ir::Value* v : instr->phi_values()) {
        if (is_corrupted(v)) {
          tainting = v;
          break;
        }
      }
    }

    if (tainting != nullptr) {
      if (auto type = classify_site(*instr)) {
        grew |= report(instr, *type, DepKind::kData, function, controlling,
                       &cd, &local_brs);
      }
      if (const CustomSite* custom = match_custom(instr)) {
        grew |= report(instr, SiteType::kCustom, DepKind::kData, function,
                       controlling, &cd, &local_brs, custom->name);
      }
      const std::size_t ptr_idx = pointer_operand_index(*instr);
      if (ptr_idx != SIZE_MAX && ptr_idx < instr->operand_count() &&
          is_corrupted(instr->operand(ptr_idx))) {
        if (auto type = classify_pointer_deref(*instr, true)) {
          grew |= report(instr, *type, DepKind::kData, function, controlling,
                         &cd, &local_brs);
        }
      }
      if (!instr->type().is_void() && !is_corrupted(instr)) {
        mark_corrupted(instr, tainting);
        grew = true;
      }
      if (instr->is_branch() &&
          std::find(local_brs.begin(), local_brs.end(), instr) ==
              local_brs.end()) {
        local_brs.push_back(instr);
        if (!parent_.contains(instr)) parent_[instr] = tainting;
        grew = true;
      }
    }

    // Memory-mediated propagation (--vuln-flow on/audit): a corrupted
    // value written to memory corrupts every may-aliased reader. Readers
    // are marked here; the analyze_from() driver restarts the walk from
    // readers in functions this walk never visits (DESIGN.md §14).
    if (options_.value_flow != nullptr) {
      bool writes_corrupted = false;
      switch (instr->opcode()) {
        case ir::Opcode::kStore:
          writes_corrupted = is_corrupted(instr->operand(0));
          break;
        case ir::Opcode::kAtomicRMWAdd:
          writes_corrupted =
              is_corrupted(instr) || is_corrupted(instr->operand(1));
          break;
        case ir::Opcode::kStrCpy:
        case ir::Opcode::kMemCopy:
          // The copied content is corrupted when a corrupted writer
          // reaches this site's source region (mem edge marked the
          // instruction itself).
          writes_corrupted = is_corrupted(instr);
          break;
        default:
          break;
      }
      if (writes_corrupted) {
        if (instr->opcode() == ir::Opcode::kStore && !is_corrupted(instr)) {
          mark_corrupted(instr, instr->operand(0));  // hint-chain link
          grew = true;
        }
        for (const ir::Instruction* reader :
             options_.value_flow->mem_successors(instr)) {
          if (is_corrupted(reader)) continue;
          mark_corrupted(reader, instr);
          grew = true;
          if (mem_seeded_.insert(reader).second) {
            mem_seeds_.push_back(reader);
          }
        }
      }
    }

    // Transitively corrupted control: a branch guarded by a corrupted
    // branch corrupts its own region too.
    if (instr->is_branch() && controlling != nullptr &&
        std::find(local_brs.begin(), local_brs.end(), instr) ==
            local_brs.end()) {
      local_brs.push_back(instr);
      // Remember how control reached this branch for hint chains.
      if (!parent_.contains(instr)) parent_[instr] = controlling;
      grew = true;
    }

    // Descend into direct callees when an argument is corrupted or the call
    // sits in corrupted control context.
    if (instr->opcode() == ir::Opcode::kCall) {
      const ir::Function* callee = instr->callee();
      std::uint64_t arg_mask = 0;
      for (std::size_t i = 0;
           i < instr->operand_count() && i < 64; ++i) {
        if (is_corrupted(instr->operand(i))) arg_mask |= 1ULL << i;
      }
      if (options_.interprocedural && callee != nullptr &&
          callee->is_internal() && callee->has_body() &&
          (arg_mask != 0 || ctrl_here)) {
        const DescentKey key{callee, arg_mask, ctrl_here};
        auto memo = descended_.find(key);
        bool callee_ret_corrupted;
        if (memo != descended_.end()) {
          callee_ret_corrupted = memo->second;
        } else {
          descended_[key] = false;  // cut cycles pessimistically
          for (std::size_t i = 0;
               i < callee->arguments().size() && i < instr->operand_count();
               ++i) {
            if (arg_mask & (1ULL << i)) {
              mark_corrupted(callee->argument(i), instr->operand(i));
            }
          }
          // Carry the controlling branch across the call so sites inside
          // the callee list it among their reaching branches (SSDB's
          // del_range sites must name the binlog.cpp:360 guard).
          const bool pushed = controlling != nullptr;
          if (pushed) ctrl_context_.push_back(controlling);
          callee_ret_corrupted = detect(callee, callee->entry(), 0, ctrl_here,
                                        depth + 1);
          if (pushed) ctrl_context_.pop_back();
          descended_[key] = callee_ret_corrupted;
        }
        if (callee_ret_corrupted && !instr->type().is_void() &&
            !is_corrupted(instr)) {
          mark_corrupted(instr, nullptr);
          grew = true;
        }
      }
    }

    // Descend into indirect callees the points-to analysis resolved.
    // Without the map this was Algorithm 1's blind spot: corruption
    // flowing into a function-pointer dispatch was dropped at the callptr
    // site. Operand 0 is the dispatched pointer; operand i+1 is argument i.
    if (instr->opcode() == ir::Opcode::kCallPtr && options_.interprocedural &&
        options_.resolved_indirect != nullptr) {
      auto resolved = options_.resolved_indirect->find(instr);
      if (resolved != options_.resolved_indirect->end()) {
        std::uint64_t arg_mask = 0;
        for (std::size_t i = 1; i < instr->operand_count() && i <= 64; ++i) {
          if (is_corrupted(instr->operand(i))) arg_mask |= 1ULL << (i - 1);
        }
        if (arg_mask != 0 || ctrl_here) {
          bool any_ret_corrupted = false;
          // Targets are in module order (points-to resolution emits them
          // sorted), so the walk is deterministic.
          for (const ir::Function* callee : resolved->second) {
            if (callee == nullptr || !callee->is_internal() ||
                !callee->has_body()) {
              continue;
            }
            const DescentKey key{callee, arg_mask, ctrl_here};
            auto memo = descended_.find(key);
            bool callee_ret_corrupted;
            if (memo != descended_.end()) {
              callee_ret_corrupted = memo->second;
            } else {
              descended_[key] = false;  // cut cycles pessimistically
              for (std::size_t i = 0; i < callee->arguments().size() &&
                                      i + 1 < instr->operand_count();
                   ++i) {
                if (arg_mask & (1ULL << i)) {
                  mark_corrupted(callee->argument(i), instr->operand(i + 1));
                }
              }
              const bool pushed = controlling != nullptr;
              if (pushed) ctrl_context_.push_back(controlling);
              callee_ret_corrupted =
                  detect(callee, callee->entry(), 0, ctrl_here, depth + 1);
              if (pushed) ctrl_context_.pop_back();
              descended_[key] = callee_ret_corrupted;
            }
            any_ret_corrupted |= callee_ret_corrupted;
          }
          if (any_ret_corrupted && !instr->type().is_void() &&
              !is_corrupted(instr)) {
            mark_corrupted(instr, nullptr);
            grew = true;
          }
        }
      }
    }

    // Return-value corruption: a corrupted operand, or a return under
    // corrupted control (Libsafe's "if (dying) return 0", Fig. 1 line 146).
    if (instr->opcode() == ir::Opcode::kRet && !ret_corrupted) {
      const bool operand_corrupted =
          instr->operand_count() == 1 && is_corrupted(instr->operand(0));
      if (operand_corrupted || (ctrl_here && instr->operand_count() == 1)) {
        ret_corrupted = true;
        grew = true;
      }
    }

    return grew;
  }

  const CustomSite* match_custom(const ir::Instruction* instr) const {
    return options_.custom_sites != nullptr
               ? options_.custom_sites->match(*instr)
               : nullptr;
  }

  bool report(const ir::Instruction* site, SiteType type, DepKind dep,
              const ir::Function* function,
              const ir::Instruction* controlling,
              const ControlDependence* cd = nullptr,
              const std::vector<const ir::Instruction*>* local_brs = nullptr,
              std::string custom_name = "") {
    if (!reported_.emplace(site, dep).second) return false;

    ExploitReport exploit;
    exploit.site = site;
    exploit.type = type;
    exploit.custom_site_name = std::move(custom_name);
    exploit.dep = dep;
    exploit.function = function;

    // Propagation chain: the corrupted-value ancestry of the site (or of
    // its controlling branch), root first.
    const ir::Value* walk =
        dep == DepKind::kControl && controlling != nullptr
            ? static_cast<const ir::Value*>(controlling)
            : static_cast<const ir::Value*>(site);
    std::vector<const ir::Instruction*> chain_branches;
    std::unordered_set<const ir::Value*> seen;
    while (walk != nullptr && seen.insert(walk).second) {
      if (const auto* as_instr = dynamic_cast<const ir::Instruction*>(walk)) {
        exploit.propagation.push_back(as_instr);
        if (as_instr->is_branch()) {
          chain_branches.push_back(as_instr);
        }
      }
      auto it = parent_.find(walk);
      walk = it != parent_.end() ? it->second : nullptr;
    }
    std::reverse(exploit.propagation.begin(), exploit.propagation.end());
    std::reverse(chain_branches.begin(), chain_branches.end());

    // Branch hints: EVERY corrupted branch execution must satisfy to reach
    // the site — the directly controlling one, its transitive guards, plus
    // the data-ancestry branches. Ordered outermost (closest to the racy
    // read) first, matching the paper's "what are the branches to reach the
    // vulnerability operation".
    std::vector<const ir::Instruction*> guards;
    // Inherited control context from enclosing calls, outermost first.
    const std::vector<const ir::Instruction*> inherited(ctrl_context_.begin(),
                                                        ctrl_context_.end());
    if (controlling != nullptr && cd != nullptr && local_brs != nullptr) {
      guards.push_back(controlling);
      bool grew_guards = true;
      while (grew_guards) {
        grew_guards = false;
        for (const ir::Instruction* cbr : *local_brs) {
          if (std::find(guards.begin(), guards.end(), cbr) != guards.end()) {
            continue;
          }
          for (const ir::Instruction* g : guards) {
            if (cd->depends(g, cbr)) {
              guards.push_back(cbr);
              grew_guards = true;
              break;
            }
          }
        }
      }
      std::reverse(guards.begin(), guards.end());  // outermost first
    }
    for (const ir::Instruction* br : inherited) {
      if (std::find(exploit.branches.begin(), exploit.branches.end(), br) ==
          exploit.branches.end()) {
        exploit.branches.push_back(br);
      }
    }
    for (const ir::Instruction* br : guards) {
      if (std::find(exploit.branches.begin(), exploit.branches.end(), br) ==
          exploit.branches.end()) {
        exploit.branches.push_back(br);
      }
    }
    for (const ir::Instruction* br : chain_branches) {
      if (std::find(exploit.branches.begin(), exploit.branches.end(), br) ==
          exploit.branches.end()) {
        exploit.branches.push_back(br);
      }
    }

    result.exploits.push_back(std::move(exploit));
    return true;
  }

  struct DescentKey {
    const ir::Function* callee;
    std::uint64_t arg_mask;
    bool ctrl;
    bool operator<(const DescentKey& o) const {
      return std::tie(callee, arg_mask, ctrl) <
             std::tie(o.callee, o.arg_mask, o.ctrl);
    }
  };

  const VulnerabilityAnalyzer::Options& options_;
  const std::function<const ControlDependence&(const ir::Function*)>& cd_;
  std::unordered_set<const ir::Value*> corrupted_;
  std::unordered_map<const ir::Value*, const ir::Value*> parent_;
  std::unordered_set<const ir::Function*> on_path_;
  /// Controlling branches of enclosing call sites (outermost first).
  std::vector<const ir::Instruction*> ctrl_context_;
  std::map<DescentKey, bool> descended_;
  std::set<std::pair<const ir::Instruction*, DepKind>> reported_;
  /// Readers corrupted via store→load edges, pending a driver restart.
  std::vector<const ir::Instruction*> mem_seeds_;
  std::unordered_set<const ir::Instruction*> mem_seeded_;
};

}  // namespace

VulnAnalysis VulnerabilityAnalyzer::analyze(
    const race::RaceReport& report) const {
  const race::AccessRecord* read = report.read_side();
  if (read == nullptr || read->instr == nullptr) {
    VulnAnalysis empty;
    return empty;
  }
  return analyze_from(read->instr, read->stack);
}

VulnAnalysis VulnerabilityAnalyzer::analyze_from(
    const ir::Instruction* corrupted_read,
    const interp::CallStack& stack) const {
  TRACE_SPAN("vuln-analyze-report", "algorithm1");
  support::metrics().counter("vuln_analyzer.reports_analyzed").inc();
  const auto start_time = std::chrono::steady_clock::now();

  const std::function<const ControlDependence&(const ir::Function*)>
      cd_provider = [this](const ir::Function* f) -> const ControlDependence& {
    return control_dep(f);
  };
  Walker walker(options_, cd_provider);
  walker.result.start = corrupted_read;
  walker.mark_corrupted(corrupted_read, nullptr);

  const ir::Function* read_function = corrupted_read->function();
  if (read_function != nullptr && corrupted_read->parent() != nullptr) {
    // Innermost frame: from the corrupted read onward.
    bool ret_corrupted = walker.detect(
        read_function, corrupted_read->parent(),
        corrupted_read->parent()->index_of(corrupted_read), /*ctrl_in=*/false,
        /*depth=*/0);

    if (options_.mode == Mode::kDirected && options_.interprocedural) {
      // Walk the runtime call stack upwards, following the return value
      // (Algorithm 1's cs.pop loop). stack is outermost-first; the last
      // entry is the read itself.
      for (std::size_t i = stack.size(); i-- > 1;) {
        const interp::StackEntry& caller = stack[i - 1];
        const ir::Instruction* call_site = caller.instr;
        if (call_site == nullptr || caller.function == nullptr) break;
        if (!ret_corrupted) break;
        if (!call_site->type().is_void()) {
          walker.mark_corrupted(call_site, corrupted_read);
        }
        ret_corrupted = walker.detect(
            caller.function, call_site->parent(),
            call_site->parent()->index_of(call_site) + 1, /*ctrl_in=*/false,
            /*depth=*/0);
      }
    } else if (options_.interprocedural) {
      // Whole-program ablation: no runtime stack — conservatively continue
      // into *every* static caller of the read's function, transitively.
      // With resolved indirect calls the graph includes fnptr dispatchers.
      ir::CallGraph cg = options_.resolved_indirect != nullptr
                             ? ir::CallGraph(*module_,
                                             *options_.resolved_indirect)
                             : ir::CallGraph(*module_);
      std::unordered_set<const ir::Function*> visited{read_function};
      std::vector<const ir::Function*> work{read_function};
      while (!work.empty()) {
        const ir::Function* f = work.back();
        work.pop_back();
        // Iterate callers in module declaration order, not the hash order
        // of the callers() set: the walk has per-call-site state (memo,
        // report dedup), so enumeration order is observable in the output
        // and must stay byte-identical across jobs/repeat runs.
        const std::unordered_set<ir::Function*>& caller_set = cg.callers(f);
        for (const auto& fn : module_->functions()) {
          ir::Function* caller = fn.get();
          if (caller_set.count(caller) == 0) continue;
          for (const ir::Instruction* site : cg.call_sites(f)) {
            if (site->function() != caller) continue;
            if (!site->type().is_void()) {
              walker.mark_corrupted(site, corrupted_read);
            }
            walker.detect(caller, site->parent(),
                          site->parent()->index_of(site) + 1,
                          /*ctrl_in=*/false, /*depth=*/0);
          }
          if (visited.insert(caller).second) work.push_back(caller);
        }
      }
    }

    // Drain memory-mediated seeds: every reader corrupted through a
    // store→load edge restarts the walk in its own function (which the
    // register-only walk may never have entered). Seeds are unique per
    // instruction, so this terminates.
    while (true) {
      const std::vector<const ir::Instruction*> seeds =
          walker.take_mem_seeds();
      if (seeds.empty()) break;
      for (const ir::Instruction* seed : seeds) {
        if (seed->function() == nullptr || seed->parent() == nullptr) {
          continue;
        }
        walker.detect(seed->function(), seed->parent(),
                      seed->parent()->index_of(seed), /*ctrl_in=*/false,
                      /*depth=*/0);
      }
    }
  }

  VulnAnalysis analysis = std::move(walker.result);
  analysis.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  support::MetricsRegistry& registry = support::metrics();
  registry.counter("vuln_analyzer.exploits").inc(analysis.exploits.size());
  registry.wall_clock("vuln_analyzer.analysis_seconds")
      .add(analysis.stats.seconds);
  return analysis;
}

}  // namespace owl::vuln
