// OWL's static vulnerability analyzer — Algorithm 1 (paper §6.1).
//
// Takes the corrupted *load* of a race report plus that load's runtime call
// stack, and walks forward through data and control dependences — across
// calls, guided by the call stack — looking for the five vulnerable-site
// types. The call-stack guidance is the paper's central accuracy/scalability
// trade (§4.1): bugs and their attacks share call-stack prefixes (§3.2), so
// the walk skips every function the runtime evidence says is irrelevant.
//
// Design decisions transcribed from §6.1:
//  - propagation is tracked through virtual registers only (no pointer
//    analysis; the detectors' runtime read instructions compensate);
//  - the walk starts at the bug's call stack and pops callers, following
//    return values, until the stack is empty;
//  - control dependence is computed per function (Ferrante et al. via
//    post-dominators) and treated transitively: a branch that is itself
//    control-corrupted corrupts everything it guards.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "interp/thread.hpp"
#include "ir/callgraph.hpp"
#include "ir/module.hpp"
#include "race/report.hpp"
#include "vuln/control_dep.hpp"
#include "vuln/sites.hpp"

namespace owl::analysis {
class ValueFlowGraph;
}  // namespace owl::analysis

namespace owl::vuln {

enum class DepKind { kControl, kData };

std::string_view dep_kind_name(DepKind kind) noexcept;

/// One potential bug-to-attack propagation — the "vulnerable input hint".
struct ExploitReport {
  const ir::Instruction* site = nullptr;
  SiteType type = SiteType::kMemoryOp;
  /// Set when type == kCustom: the registered site's label.
  std::string custom_site_name;
  DepKind dep = DepKind::kData;
  const ir::Function* function = nullptr;

  /// Corrupted branches on the way to the site; satisfying these with
  /// program inputs is what triggers the attack (the paper's Fig. 5 output).
  std::vector<const ir::Instruction*> branches;
  /// Register-level propagation chain from the racy read toward the site.
  std::vector<const ir::Instruction*> propagation;
};

struct AnalysisStats {
  std::uint64_t functions_visited = 0;
  std::uint64_t instructions_visited = 0;
  double seconds = 0.0;
};

struct VulnAnalysis {
  const ir::Instruction* start = nullptr;  ///< the corrupted read
  std::vector<ExploitReport> exploits;
  AnalysisStats stats;
};

class VulnerabilityAnalyzer {
 public:
  enum class Mode {
    kDirected,      ///< Algorithm 1: walk the bug's call stack (default)
    kWholeProgram,  ///< ablation: ignore call stacks, walk every caller
  };

  struct Options {
    Mode mode = Mode::kDirected;
    std::size_t max_call_depth = 12;
    std::uint64_t max_visited_instructions = 5'000'000;
    /// §9 comparison knobs. ConSeq-style consequence analysis stays within
    /// the bug's function (`interprocedural = false`); Livshits-style taint
    /// tracking ignores control dependences (`track_control_flow = false`).
    /// The paper argues both are insufficient for concurrency attacks —
    /// bench/ext_related_work quantifies it.
    bool interprocedural = true;
    bool track_control_flow = true;
    /// Additional user-registered site classes (§7.2). Not owned; must
    /// outlive the analyzer. nullptr = built-in taxonomy only.
    const SiteRegistry* custom_sites = nullptr;
    /// Per-callsite indirect-call targets resolved by the points-to
    /// analysis. When set, the walk descends through kCallPtr dispatches
    /// (and whole-program mode follows indirect callers) instead of
    /// dropping corruption at the dispatch — the pre-analysis blind spot.
    /// Not owned; must outlive the analyzer. nullptr = callptr opaque.
    const ir::IndirectCallMap* resolved_indirect = nullptr;
    /// Module-wide value-flow graph (--vuln-flow on/audit). When set, the
    /// walk additionally follows store→load may-alias edges: a corrupted
    /// value written to memory corrupts every reader that may alias it,
    /// and the walk restarts from readers in functions the register-only
    /// walk never reaches. nullptr (default) = the original register-only
    /// Algorithm 1 behavior, byte-identical to pre-flow output.
    /// Not owned; must outlive the analyzer.
    const analysis::ValueFlowGraph* value_flow = nullptr;
  };

  explicit VulnerabilityAnalyzer(const ir::Module& module)
      : VulnerabilityAnalyzer(module, Options{}) {}
  VulnerabilityAnalyzer(const ir::Module& module, Options options);

  /// Analyzes one race report: starts from its read side (or supplemental
  /// read for write-write pairs, §6.3). Empty result if the report carries
  /// no read.
  VulnAnalysis analyze(const race::RaceReport& report) const;

  /// Core entry: explicit corrupted read + its call stack (outermost first).
  VulnAnalysis analyze_from(const ir::Instruction* corrupted_read,
                            const interp::CallStack& stack) const;

 private:
  const ControlDependence& control_dep(const ir::Function* function) const;

  const ir::Module* module_;
  Options options_;
  mutable std::unordered_map<const ir::Function*,
                             std::unique_ptr<ControlDependence>>
      cd_cache_;
};

}  // namespace owl::vuln
