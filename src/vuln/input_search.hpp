// Vulnerable-input concretization — hint-guided input search.
//
// The paper stops at *hints*: "we did not make this vulnerable input hint
// automatically generate concrete inputs (can be done via symbolic
// execution), because we found the call stacks and branches in hints are
// already expressive enough for us to manually infer vulnerable inputs"
// (§1). This module automates that manual step on our substrate with a
// simple hint-guided search instead of full symbolic execution:
//
//   fitness(inputs) = (hint branches taking a site-reaching direction,
//                      site reached, security consequence observed)
//
// A hill climb over the input vector — mutate one position, keep the
// mutation iff fitness improves — concretizes the exploit automatically.
// It is exactly the paper's §6.2 loop ("if the site cannot be reached, it
// prints out the diverged branches as further input hints; developers can
// refine their program inputs") with the developer replaced by a search.
#pragma once

#include <functional>
#include <vector>

#include "interp/machine.hpp"
#include "vuln/analyzer.hpp"

namespace owl::vuln {

/// Builds a ready-to-run machine for a given input vector.
using MachineWithInputs = std::function<std::unique_ptr<interp::Machine>(
    const std::vector<interp::Word>&)>;

struct InputSearchOptions {
  unsigned max_rounds = 120;       ///< mutation rounds
  unsigned seeds_per_eval = 2;     ///< schedules averaged per fitness probe
  std::uint64_t seed = 0x5ea5c;    ///< RNG + schedule base seed
  /// Mutation value pool; workload inputs are lengths/delays/counts, so a
  /// spread of small magnitudes plus a few large timing values suffices.
  std::vector<interp::Word> candidates = {0,  1,  2,  3,  4,  6,   8,
                                          12, 16, 20, 30, 50, 100, 200};
};

struct InputSearchResult {
  bool attack_found = false;       ///< a security consequence was observed
  bool site_reached = false;
  std::vector<interp::Word> inputs;///< best input vector discovered
  double best_score = 0.0;
  unsigned evaluations = 0;        ///< machine runs spent
  unsigned rounds_used = 0;
};

/// Searches for inputs realizing `exploit`, starting from `base_inputs`
/// (typically the benign testing workload). Deterministic per options.seed.
InputSearchResult search_vulnerable_inputs(const ExploitReport& exploit,
                                           const MachineWithInputs& factory,
                                           std::vector<interp::Word> base_inputs,
                                           const InputSearchOptions& options = {});

}  // namespace owl::vuln
