// The five explicit vulnerable-site types (paper §3.2).
//
// "Although the consequences of concurrency attacks are miscellaneous,
// these consequences are triggered by five explicit types of vulnerable
// sites": memory operations (strcpy), NULL pointer dereferences, privilege
// operations (setuid), file operations (access/open) and process-forking
// operations (eval/fork). The types are independent, so adding more is a
// one-line change here.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/instruction.hpp"

namespace owl::vuln {

enum class SiteType {
  kMemoryOp,         ///< strcpy/memcpy-style unchecked copies
  kNullPtrDeref,     ///< data load/store through a corrupted pointer
  kNullFuncPtrDeref, ///< indirect call through a corrupted function pointer
  kPrivilegeOp,      ///< setuid and friends
  kFileOp,           ///< access()/open()/write() on files
  kProcessFork,      ///< fork()/eval() launching attacker-visible work
  kPointerAssign,    ///< a pointer-valued store — the Apache-46215 balancer
                     ///< "mycandidate = worker" site (paper §8.4 reports a
                     ///< pointer assignment control-dependent on the
                     ///< corrupted branch)
  kCustom,           ///< user-registered site (§7.2: "by adding new
                     ///< vulnerability and failure sites, OWL can be applied
                     ///< to flagging bugs that cause severe consequences")
};

std::string_view site_type_name(SiteType type) noexcept;

/// Context-free classification: instructions that are vulnerable sites by
/// opcode alone (reachable under corrupted *control* flow is enough, like
/// the SSDB db->Write pointer call at Fig. 6 line 347).
std::optional<SiteType> classify_site(const ir::Instruction& instr) noexcept;

/// Context-sensitive classification: loads/stores become NULL-pointer-deref
/// sites when their *pointer operand* is corrupted (pure control dependence
/// on a plain load would flag every memory access, which is noise).
std::optional<SiteType> classify_pointer_deref(
    const ir::Instruction& instr, bool pointer_operand_corrupted) noexcept;

/// Index of the pointer operand for deref classification (load: 0,
/// store: 1, callptr: 0); SIZE_MAX when not a dereference.
std::size_t pointer_operand_index(const ir::Instruction& instr) noexcept;

/// A user-defined site class: the §7.2 extension point. "Our study found
/// that these vulnerable sites have independent consequences to each other,
/// thus more types can be easily added."
struct CustomSite {
  std::string name;  ///< label shown in reports, e.g. "audit-log-write"
  std::function<bool(const ir::Instruction&)> match;
};

/// Holds the user's additional site classes; the analyzer consults it after
/// the built-in taxonomy. Empty by default.
class SiteRegistry {
 public:
  void add(CustomSite site) { sites_.push_back(std::move(site)); }

  /// First matching custom site, or nullptr.
  const CustomSite* match(const ir::Instruction& instr) const {
    for (const CustomSite& site : sites_) {
      if (site.match && site.match(instr)) return &site;
    }
    return nullptr;
  }

  bool empty() const noexcept { return sites_.empty(); }
  std::size_t size() const noexcept { return sites_.size(); }

 private:
  std::vector<CustomSite> sites_;
};

}  // namespace owl::vuln
