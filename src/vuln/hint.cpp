#include "vuln/hint.hpp"

#include "ir/printer.hpp"
#include "support/strings.hpp"

namespace owl::vuln {

std::string render_hint(const ExploitReport& exploit) {
  std::string out;
  out += exploit.dep == DepKind::kControl
             ? "---- Ctrl Dependent Vulnerability ----\n"
             : "---- Data Dependent Vulnerability ----\n";
  out += "type: ";
  out += site_type_name(exploit.type);
  if (!exploit.custom_site_name.empty()) {
    out += " (" + exploit.custom_site_name + ")";
  }
  out += "\n";
  for (const ir::Instruction* br : exploit.branches) {
    out += "  branch: " + ir::print_instruction(*br) + "  (" +
           br->loc().to_string() + ")\n";
  }
  if (!exploit.propagation.empty()) {
    out += "  propagation chain:\n";
    for (const ir::Instruction* step : exploit.propagation) {
      out += "    " + ir::print_instruction(*step) + "  (" +
             step->loc().to_string() + ")\n";
    }
  }
  out += "Vulnerable Site Location: ";
  if (exploit.site != nullptr) {
    out += std::string(ir::opcode_name(exploit.site->opcode())) + " in " +
           (exploit.function != nullptr ? exploit.function->name() : "<?>") +
           " (" + exploit.site->loc().to_string() + ")";
  }
  out += "\n";
  return out;
}

std::string render_analysis(const VulnAnalysis& analysis) {
  std::string out;
  if (analysis.start != nullptr) {
    out += "corrupted read: " + ir::print_instruction(*analysis.start) +
           "  (" + analysis.start->loc().to_string() + ")\n";
  }
  for (const ExploitReport& exploit : analysis.exploits) {
    out += render_hint(exploit);
  }
  out += str_format(
      "analysis: %llu function visit(s), %llu instruction visit(s), %.3fs\n",
      static_cast<unsigned long long>(analysis.stats.functions_visited),
      static_cast<unsigned long long>(analysis.stats.instructions_visited),
      analysis.stats.seconds);
  return out;
}

}  // namespace owl::vuln
