#include "analysis/prescreen.hpp"

#include <algorithm>
#include <optional>

#include "ir/instruction.hpp"

namespace owl::analysis {

namespace {

/// Pointer operands whose dynamic address produces detector events:
/// load/store (plain candidates), atomic-rmw, and both strcpy/memcopy
/// endpoints (the interpreter emits a read at src and a write at dst).
struct EventPointers {
  const ir::Value* ptrs[2] = {nullptr, nullptr};
  int count = 0;
  bool plain = false;
};

EventPointers event_pointers(const ir::Instruction& instr) {
  EventPointers out;
  switch (instr.opcode()) {
    case ir::Opcode::kLoad:
      out.ptrs[out.count++] = instr.operand(0);
      out.plain = true;
      break;
    case ir::Opcode::kStore:
      out.ptrs[out.count++] = instr.operand(1);
      out.plain = true;
      break;
    case ir::Opcode::kAtomicRMWAdd:
      out.ptrs[out.count++] = instr.operand(0);
      break;
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy:
      if (instr.operand_count() >= 2) {
        out.ptrs[out.count++] = instr.operand(0);
        out.ptrs[out.count++] = instr.operand(1);
      }
      break;
    default:
      break;
  }
  return out;
}

void insert_sorted(std::vector<PointsTo::ObjectId>& set,
                   PointsTo::ObjectId v) {
  auto it = std::lower_bound(set.begin(), set.end(), v);
  if (it == set.end() || *it != v) set.insert(it, v);
}

void erase_sorted(std::vector<PointsTo::ObjectId>& set,
                  PointsTo::ObjectId v) {
  auto it = std::lower_bound(set.begin(), set.end(), v);
  if (it != set.end() && *it == v) set.erase(it);
}

std::vector<PointsTo::ObjectId> intersect_sorted(
    const std::vector<PointsTo::ObjectId>& a,
    const std::vector<PointsTo::ObjectId>& b) {
  std::vector<PointsTo::ObjectId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

Prescreen::Prescreen(const ir::Module& module, const PointsTo& pt,
                     const ir::IndirectCallMap& resolved)
    : module_(module), pt_(pt), resolved_(resolved) {
  const std::size_t n = pt_.objects().size();
  escaped_.assign(n, 0);
  lockable_.assign(n, 1);
  undisciplined_.assign(n, 0);
  consistently_locked_.assign(n, 0);
  scan_accesses();
  compute_escape();
  compute_may_release();
  compute_locksets();
  compute_lock_discipline_and_common();
  compute_verdicts();
}

void Prescreen::disable(std::string reason) {
  if (disable_reason_.empty()) disable_reason_ = std::move(reason);
}

Prescreen::PtrClass Prescreen::classify_pointer(const ir::Value* p) const {
  if (p->is_constant()) {
    const auto value = static_cast<const ir::Constant*>(p)->value();
    // A literal below the null guard can only fault into the guard page;
    // the detector re-checks addresses dynamically, so it is harmless.
    if (value >= 0 && value < kSafeConstantLimit) return PtrClass::kSubGuard;
  }
  if (pt_.is_unknown(p)) return PtrClass::kWild;
  const auto& pts = pt_.points_to(p);
  if (pts.empty()) return PtrClass::kWild;  // e.g. clean integer arithmetic
  const PointsTo::OffsetRange off = pt_.offset_range(p);
  if (!off.bounded() || off.lo < 0) return PtrClass::kWild;
  for (const PointsTo::ObjectId o : pts) {
    if (pt_.objects()[o].kind == ObjectKind::kFunction) return PtrClass::kWild;
    std::uint64_t cells = 0;
    if (pt_.object_size(o, cells)) {
      if (static_cast<std::uint64_t>(off.hi) >= cells) return PtrClass::kWild;
    } else if (off.lo != 0 || off.hi != 0) {
      // Unknown extent: only the (unique) base address is provably inside.
      return PtrClass::kWild;
    }
  }
  return PtrClass::kTame;
}

void Prescreen::scan_accesses() {
  if (pt_.has_unknown_store()) {
    disable("a store writes through an unbounded pointer");
  }
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        if (eps.plain) ++considered_;
        for (int i = 0; i < eps.count; ++i) {
          if (classify_pointer(eps.ptrs[i]) == PtrClass::kWild) {
            ++wild_accesses_;
            disable("wild access at " + instr->loc().to_string() +
                    " could alias any object");
          }
        }
      }
    }
  }
}

void Prescreen::compute_escape() {
  std::vector<PointsTo::ObjectId> work;
  auto mark = [&](PointsTo::ObjectId o) {
    if (pt_.objects()[o].kind == ObjectKind::kFunction) return;
    if (escaped_[o]) return;
    escaped_[o] = 1;
    work.push_back(o);
  };
  // Roots: every global, and everything a thread-create argument may name.
  for (const auto& g : module_.globals()) {
    PointsTo::ObjectId id = 0;
    if (pt_.id_of_site(g.get(), id)) mark(id);
  }
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kThreadCreate &&
            instr->operand_count() > 0) {
          for (const PointsTo::ObjectId o :
               pt_.points_to(instr->operand(0))) {
            mark(o);
          }
        }
      }
    }
  }
  // Closure: anything an escaped object's cells may name escapes too.
  while (!work.empty()) {
    const PointsTo::ObjectId o = work.back();
    work.pop_back();
    for (const PointsTo::ObjectId target : pt_.object_points_to(o)) {
      mark(target);
    }
  }
}

bool Prescreen::call_may_release(const ir::Instruction& instr) const {
  if (instr.opcode() == ir::Opcode::kCall) {
    const ir::Function* callee = instr.callee();
    return callee != nullptr && callee->is_internal() &&
           callee->has_body() && may_release_.count(callee) != 0;
  }
  if (instr.opcode() == ir::Opcode::kCallPtr) {
    if (pt_.indirect_unresolved(&instr)) return true;
    auto it = resolved_.find(&instr);
    if (it == resolved_.end()) return false;
    for (const ir::Function* target : it->second) {
      if (target->is_internal() && target->has_body() &&
          may_release_.count(target) != 0) {
        return true;
      }
    }
  }
  return false;
}

void Prescreen::compute_may_release() {
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kUnlock) {
          may_release_.insert(f.get());
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& f : module_.functions()) {
      if (may_release_.count(f.get()) != 0) continue;
      for (const auto& bb : f->blocks()) {
        for (const auto& instr : bb->instructions()) {
          if (instr->is_call() && call_may_release(*instr)) {
            may_release_.insert(f.get());
            changed = true;
            break;
          }
        }
        if (changed) break;
      }
    }
  }
}

bool Prescreen::lock_token(const ir::Value* operand,
                           PointsTo::ObjectId& token) const {
  if (operand->kind() != ir::ValueKind::kGlobalVariable) return false;
  return pt_.id_of_site(operand, token);
}

void Prescreen::compute_locksets() {
  // Forward must-analysis per function: meet = intersection, entry = ∅
  // (callers may hold locks we cannot see — claiming fewer held locks is
  // the safe direction). Unidentifiable unlocks and calls that may release
  // clear the whole set.
  for (const auto& f : module_.functions()) {
    if (!f->has_body()) continue;
    std::unordered_map<const ir::BasicBlock*,
                       std::vector<const ir::BasicBlock*>>
        preds;
    for (const auto& bb : f->blocks()) {
      if (bb->instructions().empty()) continue;
      for (const ir::BasicBlock* target :
           bb->instructions().back()->targets()) {
        preds[target].push_back(bb.get());
      }
    }
    using LockSet = std::vector<PointsTo::ObjectId>;
    auto transfer = [&](LockSet& cur, const ir::Instruction& instr) {
      PointsTo::ObjectId token = 0;
      switch (instr.opcode()) {
        case ir::Opcode::kLock:
          if (instr.operand_count() > 0 &&
              lock_token(instr.operand(0), token)) {
            insert_sorted(cur, token);
          }
          break;
        case ir::Opcode::kUnlock:
          if (instr.operand_count() > 0 &&
              lock_token(instr.operand(0), token)) {
            erase_sorted(cur, token);
          } else {
            cur.clear();  // released an unidentifiable mutex
          }
          break;
        case ir::Opcode::kCall:
        case ir::Opcode::kCallPtr:
          if (call_may_release(instr)) cur.clear();
          break;
        default:
          break;
      }
    };

    std::unordered_map<const ir::BasicBlock*, std::optional<LockSet>> in;
    for (const auto& bb : f->blocks()) in[bb.get()] = std::nullopt;
    in[f->entry()] = LockSet{};
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& bb : f->blocks()) {
        const auto& state = in[bb.get()];
        if (!state.has_value()) continue;
        LockSet out = *state;
        for (const auto& instr : bb->instructions()) transfer(out, *instr);
        if (bb->instructions().empty()) continue;
        for (const ir::BasicBlock* succ :
             bb->instructions().back()->targets()) {
          auto& sin = in[succ];
          if (!sin.has_value()) {
            sin = out;
            changed = true;
          } else {
            LockSet met = intersect_sorted(*sin, out);
            if (met != *sin) {
              sin = std::move(met);
              changed = true;
            }
          }
        }
      }
    }

    // Record the must-set immediately before every event/lock/unlock site.
    for (const auto& bb : f->blocks()) {
      LockSet cur = in[bb.get()].value_or(LockSet{});
      for (const auto& instr : bb->instructions()) {
        switch (instr->opcode()) {
          case ir::Opcode::kLoad:
          case ir::Opcode::kStore:
          case ir::Opcode::kAtomicRMWAdd:
          case ir::Opcode::kStrCpy:
          case ir::Opcode::kMemCopy:
          case ir::Opcode::kLock:
          case ir::Opcode::kUnlock:
            must_before_[instr.get()] = cur;
            break;
          default:
            break;
        }
        transfer(cur, *instr);
      }
    }
  }
}

bool Prescreen::well_formed(PointsTo::ObjectId token) const {
  return !all_undisciplined_ && undisciplined_[token] == 0;
}

void Prescreen::compute_lock_discipline_and_common() {
  // Pass 1 — discipline: a token is well-formed only if every lock/unlock
  // of it names the global directly, and every unlock provably holds it.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const ir::Opcode op = instr->opcode();
        if (op != ir::Opcode::kLock && op != ir::Opcode::kUnlock) continue;
        if (instr->operand_count() == 0) continue;
        const ir::Value* operand = instr->operand(0);
        PointsTo::ObjectId token = 0;
        if (lock_token(operand, token)) {
          if (op == ir::Opcode::kUnlock) {
            const auto& held = must_before_[instr.get()];
            if (!std::binary_search(held.begin(), held.end(), token)) {
              undisciplined_[token] = 1;  // foreign/unpaired unlock
            }
          }
          continue;
        }
        if (operand->is_constant()) {
          const auto v = static_cast<const ir::Constant*>(operand)->value();
          if (v >= 0 && v < kSafeConstantLimit) continue;  // guard-page mutex
        }
        const auto& pts = pt_.points_to(operand);
        if (pt_.is_unknown(operand) || pts.empty()) {
          all_undisciplined_ = true;  // could pair with any mutex
        } else {
          for (const PointsTo::ObjectId o : pts) undisciplined_[o] = 1;
        }
      }
    }
  }
  // Pass 2 — per-object accessor facts: eligibility (plain accesses only)
  // and the intersection of well-formed held tokens across all accessors.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        for (int i = 0; i < eps.count; ++i) {
          if (classify_pointer(eps.ptrs[i]) != PtrClass::kTame) continue;
          for (const PointsTo::ObjectId o : pt_.points_to(eps.ptrs[i])) {
            if (!eps.plain) {
              lockable_[o] = 0;
              continue;
            }
            std::vector<PointsTo::ObjectId> held_wf;
            for (const PointsTo::ObjectId t : must_before_[instr.get()]) {
              if (well_formed(t)) held_wf.push_back(t);
            }
            auto it = common_locks_.find(o);
            if (it == common_locks_.end()) {
              common_locks_.emplace(o, std::move(held_wf));
            } else {
              it->second = intersect_sorted(it->second, held_wf);
            }
          }
        }
      }
    }
  }
  for (std::size_t o = 0; o < consistently_locked_.size(); ++o) {
    auto it = common_locks_.find(static_cast<PointsTo::ObjectId>(o));
    consistently_locked_[o] = lockable_[o] != 0 && it != common_locks_.end() &&
                              !it->second.empty();
  }
}

void Prescreen::compute_verdicts() {
  if (!pruning_enabled()) return;
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        if (!eps.plain) continue;
        const PtrClass cls = classify_pointer(eps.ptrs[0]);
        if (cls == PtrClass::kSubGuard) {
          // Can only fault into the guard page; the detector's dynamic
          // address check already ignores sub-guard events.
          no_race_.insert(instr.get());
          continue;
        }
        bool safe = true;
        for (const PointsTo::ObjectId o : pt_.points_to(eps.ptrs[0])) {
          if (escaped_[o] != 0 && consistently_locked_[o] == 0) {
            safe = false;
            break;
          }
        }
        if (safe) no_race_.insert(instr.get());
      }
    }
  }
}

}  // namespace owl::analysis
