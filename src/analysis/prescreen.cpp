#include "analysis/prescreen.hpp"

#include <algorithm>

#include "ir/instruction.hpp"

namespace owl::analysis {

namespace {

/// Pointer operands whose dynamic address produces detector events:
/// load/store (plain candidates), atomic-rmw, and both strcpy/memcopy
/// endpoints (the interpreter emits a read at src and a write at dst).
struct EventPointers {
  const ir::Value* ptrs[2] = {nullptr, nullptr};
  int count = 0;
  bool plain = false;
};

EventPointers event_pointers(const ir::Instruction& instr) {
  EventPointers out;
  switch (instr.opcode()) {
    case ir::Opcode::kLoad:
      out.ptrs[out.count++] = instr.operand(0);
      out.plain = true;
      break;
    case ir::Opcode::kStore:
      out.ptrs[out.count++] = instr.operand(1);
      out.plain = true;
      break;
    case ir::Opcode::kAtomicRMWAdd:
      out.ptrs[out.count++] = instr.operand(0);
      break;
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy:
      if (instr.operand_count() >= 2) {
        out.ptrs[out.count++] = instr.operand(0);
        out.ptrs[out.count++] = instr.operand(1);
      }
      break;
    default:
      break;
  }
  return out;
}

std::vector<PointsTo::ObjectId> intersect_sorted(
    const std::vector<PointsTo::ObjectId>& a,
    const std::vector<PointsTo::ObjectId>& b) {
  std::vector<PointsTo::ObjectId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

Prescreen::Prescreen(const ir::Module& module, const PointsTo& pt,
                     const ir::IndirectCallMap& resolved)
    : module_(module),
      pt_(pt),
      owned_facts_(std::make_unique<LockFacts>(module, pt, resolved)),
      facts_(owned_facts_.get()) {
  const std::size_t n = pt_.objects().size();
  escaped_.assign(n, 0);
  lockable_.assign(n, 1);
  consistently_locked_.assign(n, 0);
  scan_accesses();
  compute_escape();
  compute_lock_discipline_and_common();
  compute_verdicts();
}

Prescreen::Prescreen(const ir::Module& module, const PointsTo& pt,
                     const ir::IndirectCallMap& resolved,
                     const LockFacts& facts)
    : module_(module), pt_(pt), facts_(&facts) {
  (void)resolved;  // lock facts already folded the call graph in
  const std::size_t n = pt_.objects().size();
  escaped_.assign(n, 0);
  lockable_.assign(n, 1);
  consistently_locked_.assign(n, 0);
  scan_accesses();
  compute_escape();
  compute_lock_discipline_and_common();
  compute_verdicts();
}

void Prescreen::disable(std::string reason) {
  if (disable_reason_.empty()) disable_reason_ = std::move(reason);
}

Prescreen::PtrClass Prescreen::classify_pointer(const ir::Value* p) const {
  if (p->is_constant()) {
    const auto value = static_cast<const ir::Constant*>(p)->value();
    // A literal below the null guard can only fault into the guard page;
    // the detector re-checks addresses dynamically, so it is harmless.
    if (value >= 0 && value < kSafeConstantLimit) return PtrClass::kSubGuard;
  }
  if (pt_.is_unknown(p)) return PtrClass::kWild;
  const auto& pts = pt_.points_to(p);
  if (pts.empty()) return PtrClass::kWild;  // e.g. clean integer arithmetic
  const PointsTo::OffsetRange off = pt_.offset_range(p);
  if (!off.bounded() || off.lo < 0) return PtrClass::kWild;
  for (const PointsTo::ObjectId o : pts) {
    if (pt_.objects()[o].kind == ObjectKind::kFunction) return PtrClass::kWild;
    std::uint64_t cells = 0;
    if (pt_.object_size(o, cells)) {
      if (static_cast<std::uint64_t>(off.hi) >= cells) return PtrClass::kWild;
    } else if (off.lo != 0 || off.hi != 0) {
      // Unknown extent: only the (unique) base address is provably inside.
      return PtrClass::kWild;
    }
  }
  return PtrClass::kTame;
}

void Prescreen::scan_accesses() {
  if (pt_.has_unknown_store()) {
    disable("a store writes through an unbounded pointer");
  }
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        if (eps.plain) ++considered_;
        for (int i = 0; i < eps.count; ++i) {
          if (classify_pointer(eps.ptrs[i]) == PtrClass::kWild) {
            ++wild_accesses_;
            disable("wild access at " + instr->loc().to_string() +
                    " could alias any object");
          }
        }
      }
    }
  }
}

void Prescreen::compute_escape() {
  std::vector<PointsTo::ObjectId> work;
  auto mark = [&](PointsTo::ObjectId o) {
    if (pt_.objects()[o].kind == ObjectKind::kFunction) return;
    if (escaped_[o]) return;
    escaped_[o] = 1;
    work.push_back(o);
  };
  // Roots: every global, and everything a thread-create argument may name.
  for (const auto& g : module_.globals()) {
    PointsTo::ObjectId id = 0;
    if (pt_.id_of_site(g.get(), id)) mark(id);
  }
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kThreadCreate &&
            instr->operand_count() > 0) {
          for (const PointsTo::ObjectId o :
               pt_.points_to(instr->operand(0))) {
            mark(o);
          }
        }
      }
    }
  }
  // Closure: anything an escaped object's cells may name escapes too.
  while (!work.empty()) {
    const PointsTo::ObjectId o = work.back();
    work.pop_back();
    for (const PointsTo::ObjectId target : pt_.object_points_to(o)) {
      mark(target);
    }
  }
}

void Prescreen::compute_lock_discipline_and_common() {
  // Discipline comes precomputed in LockFacts; what remains is the
  // per-object accessor pass: eligibility (plain accesses only) and the
  // intersection of well-formed held tokens across all accessors.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        for (int i = 0; i < eps.count; ++i) {
          if (classify_pointer(eps.ptrs[i]) != PtrClass::kTame) continue;
          for (const PointsTo::ObjectId o : pt_.points_to(eps.ptrs[i])) {
            if (!eps.plain) {
              lockable_[o] = 0;
              continue;
            }
            std::vector<PointsTo::ObjectId> held_wf;
            for (const PointsTo::ObjectId t :
                 facts_->must_held_before(instr.get())) {
              if (facts_->well_formed(t)) held_wf.push_back(t);
            }
            auto it = common_locks_.find(o);
            if (it == common_locks_.end()) {
              common_locks_.emplace(o, std::move(held_wf));
            } else {
              it->second = intersect_sorted(it->second, held_wf);
            }
          }
        }
      }
    }
  }
  for (std::size_t o = 0; o < consistently_locked_.size(); ++o) {
    auto it = common_locks_.find(static_cast<PointsTo::ObjectId>(o));
    consistently_locked_[o] = lockable_[o] != 0 && it != common_locks_.end() &&
                              !it->second.empty();
  }
}

void Prescreen::compute_verdicts() {
  if (!pruning_enabled()) return;
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const EventPointers eps = event_pointers(*instr);
        if (!eps.plain) continue;
        const PtrClass cls = classify_pointer(eps.ptrs[0]);
        if (cls == PtrClass::kSubGuard) {
          // Can only fault into the guard page; the detector's dynamic
          // address check already ignores sub-guard events.
          no_race_.insert(instr.get());
          continue;
        }
        bool safe = true;
        for (const PointsTo::ObjectId o : pt_.points_to(eps.ptrs[0])) {
          if (escaped_[o] != 0 && consistently_locked_[o] == 0) {
            safe = false;
            break;
          }
        }
        if (safe) no_race_.insert(instr.get());
      }
    }
  }
}

}  // namespace owl::analysis
