// Module-wide static value-flow graph over MiniIR (DESIGN.md §14).
//
// Algorithm 1's original transcription walks propagation "through virtual
// registers only (no pointer analysis)" — corruption that transits memory
// (store the racy value, load it elsewhere, possibly in another function)
// was invisible to the static walk. This graph closes that blind spot with
// three deterministic edge families over one per-module node ordering
// (function, block, instruction declaration order):
//
//  * def→use: an instruction result feeding an operand or phi incoming of
//    another instruction in the same function;
//  * call/return binding: an actual argument feeding every use of the
//    matching formal in each callee (direct calls, thread entries, and
//    kCallPtr sites through the points-to resolved IndirectCallMap), and a
//    callee's kRet operand feeding the call-site result;
//  * store→load: a memory write reaching a memory read whenever the
//    points-to sets of the written and read pointers intersect (may-alias).
//    Writers are kStore / kAtomicRMWAdd / kStrCpy / kMemCopy destinations;
//    readers are kLoad / kStrCpy / kMemCopy sources — exactly the opcodes
//    whose interpreter steps emit Observer::Access events, so audit mode
//    can replay runtime store→load evidence against this edge set.
//
// Unknown pointers (PointsTo::is_unknown) cannot be given precise edges;
// such writers/readers are flagged instead and `covers()` treats them as
// reaching everything — the conservative direction for the audit contract
// ("every runtime dependence is statically explained").
//
// The graph also exports inter-procedural lock-order facts for the
// deadlock checker: a call executed while a mutex is must-held reaches
// every acquire in its transitive callees (see interprocedural_lock_edges).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/lock_facts.hpp"
#include "analysis/points_to.hpp"
#include "ir/callgraph.hpp"
#include "ir/module.hpp"

namespace owl::analysis {

/// Pipeline-facing mode switch for memory-aware value flow. Mirrors
/// race/predict/predict_mode.hpp: kOff leaves every byte of pipeline output
/// untouched; kOn extends Algorithm 1's worklist across store→load edges;
/// kAudit produces kOn's reports and additionally cross-checks every
/// runtime-observed store→load dependence against the static edge set
/// (advisory vulnflow.audit_violations — a runtime dependence the graph
/// lacks is a soundness violation, exit 3 from the CLI and the daemon).
enum class ValueFlowMode {
  kOff,    ///< graph not built, walk stays register-only (default)
  kOn,     ///< memory-mediated propagation reaches the five site types
  kAudit,  ///< kOn plus runtime read-evidence cross-check (must agree)
};

inline std::string_view value_flow_mode_name(ValueFlowMode mode) noexcept {
  switch (mode) {
    case ValueFlowMode::kOff: return "off";
    case ValueFlowMode::kOn: return "on";
    case ValueFlowMode::kAudit: return "audit";
  }
  return "?";
}

inline bool parse_value_flow_mode(std::string_view text,
                                  ValueFlowMode& out) noexcept {
  if (text == "off") { out = ValueFlowMode::kOff; return true; }
  if (text == "on") { out = ValueFlowMode::kOn; return true; }
  if (text == "audit") { out = ValueFlowMode::kAudit; return true; }
  return false;
}

class ValueFlowGraph {
 public:
  ValueFlowGraph(const ir::Module& module, const PointsTo& pt,
                 const ir::IndirectCallMap& resolved);

  /// Stable node index of an instruction (module declaration order), or
  /// false for instructions outside the module this graph was built from.
  bool node_index(const ir::Instruction* instr, std::size_t& out) const;
  const ir::Instruction* node(std::size_t index) const {
    return nodes_.at(index);
  }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Register successors of `def`: def→use plus call/return binding edges,
  /// sorted by node index, deduplicated.
  const std::vector<const ir::Instruction*>& uses(
      const ir::Instruction* def) const;

  /// Memory readers a write by `writer` may reach (may-alias), sorted by
  /// node index.
  const std::vector<const ir::Instruction*>& mem_successors(
      const ir::Instruction* writer) const;

  bool has_mem_edge(const ir::Instruction* writer,
                    const ir::Instruction* reader) const;
  /// Writer through a pointer the points-to analysis cannot bound.
  bool writes_unknown(const ir::Instruction* writer) const {
    return unknown_writes_.count(writer) != 0;
  }
  /// Reader through a pointer the points-to analysis cannot bound.
  bool reads_unknown(const ir::Instruction* reader) const {
    return unknown_reads_.count(reader) != 0;
  }
  /// Audit contract: a runtime store→load dependence is statically
  /// explained when a precise mem edge exists or either side is unknown.
  bool covers(const ir::Instruction* writer,
              const ir::Instruction* reader) const {
    return has_mem_edge(writer, reader) || writes_unknown(writer) ||
           reads_unknown(reader);
  }

  struct Stats {
    std::size_t nodes = 0;
    std::size_t def_use_edges = 0;  ///< same-function register edges
    std::size_t call_edges = 0;     ///< arg/return binding edges
    std::size_t mem_edges = 0;      ///< store→load may-alias edges
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Deterministic text snapshot — nodes then edges, all in node-index
  /// order (golden dumps under tests/golden/value_flow/).
  std::string serialize() const;

 private:
  void add_nodes(const ir::Module& module);
  void add_def_use_edges();
  void add_call_edges(const ir::IndirectCallMap& resolved);
  void add_mem_edges(const PointsTo& pt);
  void add_use(const ir::Instruction* def, const ir::Instruction* use,
               bool call_edge);

  std::vector<const ir::Instruction*> nodes_;
  std::unordered_map<const ir::Instruction*, std::size_t> index_;
  std::unordered_map<const ir::Instruction*,
                     std::vector<const ir::Instruction*>>
      uses_;
  std::unordered_map<const ir::Instruction*,
                     std::vector<const ir::Instruction*>>
      mem_succ_;
  std::unordered_set<const ir::Instruction*> unknown_writes_;
  std::unordered_set<const ir::Instruction*> unknown_reads_;
  Stats stats_;

  static const std::vector<const ir::Instruction*> kEmptyList;
};

/// One inter-procedural lock-order fact: a call site executed while `held`
/// is must-held (straight-line facts within the call's block — claiming
/// fewer held locks is the safe direction) transitively reaches an acquire
/// of `acquired` in a callee. The deadlock checker folds these into its
/// lock-order graph; `caller` carries the thread context for the MHP
/// filter, `acquire_site` the witness location in the callee.
struct InterprocLockEdge {
  PointsTo::ObjectId held = 0;
  PointsTo::ObjectId acquired = 0;
  const ir::Instruction* acquire_site = nullptr;
  const ir::Function* caller = nullptr;
};

/// Edges in module declaration order, first witness per (held, acquired)
/// pair. Thread-create sites contribute nothing: a spawned thread does not
/// inherit its spawner's locks.
std::vector<InterprocLockEdge> interprocedural_lock_edges(
    const ir::Module& module, const LockFacts& facts,
    const ir::IndirectCallMap& resolved);

}  // namespace owl::analysis
