// Whole-module static analysis bundle, computed once per pipeline target:
// Andersen points-to, per-callsite indirect-call resolution (the
// IndirectCallMap the rebuilt CallGraph and Algorithm 1 consume), and the
// may-race prescreen the dynamic detectors consult.
#pragma once

#include <cstddef>

#include "analysis/lock_facts.hpp"
#include "analysis/points_to.hpp"
#include "analysis/prescreen.hpp"
#include "ir/callgraph.hpp"

namespace owl::analysis {

struct ModuleStatic {
  explicit ModuleStatic(const ir::Module& module);

  PointsTo points_to;
  ir::IndirectCallMap resolved_calls;
  // Shared lockset/discipline facts: computed once, consumed by both the
  // prescreen below and the checker suite (src/checkers/).
  LockFacts lock_facts;
  std::size_t indirect_call_sites = 0;
  std::size_t indirect_resolved_edges = 0;
  std::size_t unresolved_indirect_sites = 0;
  Prescreen prescreen;
};

}  // namespace owl::analysis
