// Andersen-style inclusion-based points-to analysis over MiniIR.
//
// Whole-module, flow- and context-insensitive, field-insensitive (one
// abstract "content" node per allocation site — the first cut DESIGN.md §9
// documents). Constraints come from alloca/malloc/global (address-of),
// gep/phi (copy), load/store (complex), direct and indirect calls
// (parameter/return copies, resolved on the fly from the function objects
// flowing into a callptr target operand), thread_create (argument copy into
// the entry function), atomic-rmw, and strcpy/memcopy (content-to-content
// copy).
//
// Anything the abstract domain cannot bound — workload inputs, results of
// external calls, arithmetic over pointer-bearing operands, integer
// literals large enough to name simulated memory — taints the receiving
// value "unknown". Unknown pointers make the consuming analyses (prescreen,
// indirect-call resolution) fall back to conservative answers instead of
// silently under-approximating.
//
// Alongside the points-to sets the solver tracks, per value, a saturating
// [lo, hi] bound on the cell offset the value may carry relative to the
// base of any pointed-to object (gep adds its constant; variable geps and
// cyclic gep chains widen to unbounded). The prescreen uses it to decide
// whether a memory access provably stays inside its objects' extents —
// without it an out-of-bounds gep could reach a neighbouring object and a
// "provably thread-local" verdict would be unsound.
//
// Determinism: abstract objects are numbered in module declaration order
// (globals, then functions, then allocation instructions in function /
// block / instruction order) and every points-to set is a sorted vector of
// those ids, so two runs — and two identically-built modules — produce
// identical sets regardless of hashing or work order.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.hpp"

namespace owl::analysis {

/// Integer literals below this can never name simulated memory (the
/// interpreter reserves addresses [0, 4096) as a null-guard page); anything
/// else could collide with a live object address and taints its consumers
/// "unknown". Kept in sync with interp::kNullGuard by a static_assert where
/// both headers are visible (core/pipeline.cpp).
constexpr std::int64_t kSafeConstantLimit = 4096;

enum class ObjectKind {
  kGlobal,    ///< a GlobalVariable's cells
  kStack,     ///< one kAlloca site (all dynamic instances collapsed)
  kHeap,      ///< one kMalloc site (all dynamic instances collapsed)
  kFunction,  ///< a Function used as a first-class value
};

/// One abstract memory object (allocation site, global, or function).
struct AbstractObject {
  ObjectKind kind;
  const ir::Value* site;  ///< GlobalVariable | alloca/malloc | Function
};

class PointsTo {
 public:
  using ObjectId = std::uint32_t;

  /// Saturating bound on the cell offset a value may carry relative to the
  /// base of any object it points to.
  struct OffsetRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool bounded() const noexcept {
      return lo != std::numeric_limits<std::int64_t>::min() &&
             hi != std::numeric_limits<std::int64_t>::max();
    }
  };

  explicit PointsTo(const ir::Module& module);

  /// All abstract objects, indexed by ObjectId, in deterministic order.
  const std::vector<AbstractObject>& objects() const noexcept {
    return objects_;
  }

  /// Sorted object ids `v` may point to (empty for non-pointers and for
  /// values the analysis never saw).
  const std::vector<ObjectId>& points_to(const ir::Value* v) const;
  /// True when `v` may hold a pointer the analysis cannot bound.
  bool is_unknown(const ir::Value* v) const;
  /// Offset bound for `v`; {0, 0} when only object bases flow into it.
  OffsetRange offset_range(const ir::Value* v) const;

  /// ObjectId of an allocation site / global / function value, if any.
  bool id_of_site(const ir::Value* site, ObjectId& id) const;

  /// Sorted object ids the cells of object `o` may point to.
  const std::vector<ObjectId>& object_points_to(ObjectId o) const;
  /// True when object `o`'s cells may hold an unbounded pointer.
  bool object_content_unknown(ObjectId o) const;
  /// Cell count of `o` when statically known (globals, constant-sized
  /// allocas/mallocs). Returns false for functions and dynamic sizes.
  bool object_size(ObjectId o, std::uint64_t& cells) const;

  /// True when some store writes through a pointer the analysis cannot
  /// bound — such a store may clobber ANY object, so consumers relying on
  /// object disjointness must give up (prescreen disables pruning).
  bool has_unknown_store() const noexcept { return unknown_store_; }

  /// Functions `callptr`'s target operand may name, in module declaration
  /// order. Includes external functions; callers filter as needed.
  std::vector<ir::Function*> resolve_indirect(
      const ir::Instruction* callptr) const;
  /// True when the callptr's target operand is unknown or may hold
  /// non-function values — resolve_indirect() is then incomplete.
  bool indirect_unresolved(const ir::Instruction* callptr) const;

  /// Solver statistics, exposed for tests and benchmarks.
  struct Stats {
    std::size_t nodes = 0;
    std::size_t objects = 0;
    std::size_t copy_edges = 0;
    std::size_t scc_merges = 0;
    std::size_t propagations = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  using NodeId = std::uint32_t;

  struct Edge {
    NodeId dst;
    std::int64_t add_lo;  // offset addend (INT64_MIN = unbounded below)
    std::int64_t add_hi;  // offset addend (INT64_MAX = unbounded above)
  };

  struct Node {
    std::vector<ObjectId> pts;    // sorted, deduplicated
    std::vector<ObjectId> delta;  // added since last processing
    // Empty (lo > hi) until a pointer actually flows in, so the very first
    // range lands exactly instead of being unioned with a spurious {0, 0}.
    OffsetRange off{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::int64_t>::min()};
    std::uint8_t off_bumps = 0;   // widening counter
    bool unknown = false;
    bool unknown_handled = false;
    bool in_worklist = false;
    std::vector<Edge> copy_out;       // subset edges: pts(this) ⊆ pts(dst)
    std::vector<NodeId> arith_out;    // taint: ptr-ish(this) → unknown(dst)
    std::vector<NodeId> load_users;   // results of loads through this ptr
    std::vector<NodeId> store_values; // values stored through this ptr
    std::vector<std::pair<NodeId, NodeId>> rmw_users;  // (result, delta)
    std::vector<const ir::Instruction*> call_users;    // callptrs via this
    std::vector<std::uint32_t> copyop_users;  // indices into copy_ops_
  };

  struct CopyOp {  // strcpy/memcopy: *dst ⊇ *src over resolved objects
    NodeId dst;
    NodeId src;
  };

  // --- graph construction ---
  ObjectId add_object(ObjectKind kind, const ir::Value* site,
                      ir::Function* fn = nullptr);
  NodeId node_of(const ir::Value* v);
  NodeId lookup(const ir::Value* v) const;
  NodeId content_node(ObjectId o) const { return static_cast<NodeId>(o); }
  void enumerate_objects();
  void seed_constraints();
  void seed_instruction(const ir::Instruction& instr);
  void add_copy_edge(NodeId from, NodeId to, std::int64_t add_lo = 0,
                     std::int64_t add_hi = 0);
  void add_arith_edge(NodeId from, NodeId to);
  void add_load_user(NodeId ptr, NodeId result);
  void add_store_value(NodeId ptr, NodeId value);
  void add_points_to(NodeId n, ObjectId o);
  void set_unknown(NodeId n);
  void push_offset(NodeId to, std::int64_t lo, std::int64_t hi);

  // --- solving ---
  NodeId find(NodeId n) const;
  void schedule(NodeId n);
  void solve();
  void drain();
  void process(NodeId n);
  void process_unknown(NodeId n);
  void process_copyop(std::uint32_t index);
  void wire_indirect(const ir::Instruction* callptr, ObjectId fn_object);
  std::size_t collapse_cycles();
  void merge(NodeId into, NodeId from);

  const ir::Module& module_;
  std::vector<AbstractObject> objects_;
  std::vector<ir::Function*> object_functions_;  // non-null for kFunction
  std::unordered_map<const ir::Value*, ObjectId> object_ids_;
  std::unordered_map<const ir::Value*, NodeId> value_nodes_;
  std::vector<Node> nodes_;
  mutable std::vector<NodeId> parent_;  // union-find, path compression
  std::vector<CopyOp> copy_ops_;
  std::unordered_map<const ir::Instruction*, std::vector<ObjectId>>
      indirect_targets_;  // callptr -> function objects resolved so far
  std::unordered_set<const ir::Instruction*> indirect_unresolved_;
  std::unordered_map<const ir::Function*, std::vector<NodeId>> return_nodes_;
  std::unordered_set<std::uint64_t> dyn_edge_seen_;
  std::vector<NodeId> worklist_;
  bool unknown_store_ = false;
  bool edges_dirty_ = false;
  Stats stats_;

  static const std::vector<ObjectId> kEmptySet;
};

}  // namespace owl::analysis
