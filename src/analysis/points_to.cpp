#include "analysis/points_to.hpp"

#include <algorithm>
#include <cassert>

#include "ir/instruction.hpp"

namespace owl::analysis {

namespace {

constexpr std::int64_t kLoInf = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kHiInf = std::numeric_limits<std::int64_t>::max();
constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a == kLoInf || b == kLoInf) return kLoInf;
  if (a == kHiInf || b == kHiInf) return kHiInf;
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) return a < 0 ? kLoInf : kHiInf;
  return r;
}

bool is_arith(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::kAdd:
    case ir::Opcode::kSub:
    case ir::Opcode::kMul:
    case ir::Opcode::kUDiv:
    case ir::Opcode::kSDiv:
    case ir::Opcode::kAnd:
    case ir::Opcode::kOr:
    case ir::Opcode::kXor:
    case ir::Opcode::kShl:
    case ir::Opcode::kLShr:
    case ir::Opcode::kICmp:
      return true;
    default:
      return false;
  }
}

}  // namespace

const std::vector<PointsTo::ObjectId> PointsTo::kEmptySet;

PointsTo::PointsTo(const ir::Module& module) : module_(module) {
  enumerate_objects();
  seed_constraints();
  solve();
  stats_.nodes = nodes_.size();
  stats_.objects = objects_.size();
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

PointsTo::ObjectId PointsTo::add_object(ObjectKind kind, const ir::Value* site,
                                        ir::Function* fn) {
  const auto id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({kind, site});
  object_functions_.push_back(fn);
  object_ids_.emplace(site, id);
  return id;
}

void PointsTo::enumerate_objects() {
  // Deterministic object numbering: globals, then functions, then
  // allocation sites in function/block/instruction order.
  for (const auto& g : module_.globals()) {
    add_object(ObjectKind::kGlobal, g.get());
  }
  for (const auto& f : module_.functions()) {
    add_object(ObjectKind::kFunction, f.get(), f.get());
  }
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kAlloca) {
          add_object(ObjectKind::kStack, instr.get());
        } else if (instr->opcode() == ir::Opcode::kMalloc) {
          add_object(ObjectKind::kHeap, instr.get());
        }
      }
    }
  }
  // Node ids [0, objects) are the per-object content nodes.
  nodes_.resize(objects_.size());
  parent_.resize(objects_.size());
  for (NodeId i = 0; i < parent_.size(); ++i) parent_[i] = i;
}

PointsTo::NodeId PointsTo::node_of(const ir::Value* v) {
  auto it = value_nodes_.find(v);
  if (it != value_nodes_.end()) return it->second;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  parent_.push_back(id);
  value_nodes_.emplace(v, id);
  switch (v->kind()) {
    case ir::ValueKind::kGlobalVariable:
    case ir::ValueKind::kFunction:
      add_points_to(id, object_ids_.at(v));
      push_offset(id, 0, 0);  // address-of yields the object base
      break;
    case ir::ValueKind::kInstruction: {
      const auto* instr = static_cast<const ir::Instruction*>(v);
      if (instr->opcode() == ir::Opcode::kAlloca ||
          instr->opcode() == ir::Opcode::kMalloc) {
        add_points_to(id, object_ids_.at(v));
        push_offset(id, 0, 0);  // address-of yields the object base
      }
      break;
    }
    case ir::ValueKind::kConstant: {
      const auto value = static_cast<const ir::Constant*>(v)->value();
      // Literals large enough to name simulated memory are wild pointers.
      if (value < 0 || value >= kSafeConstantLimit) set_unknown(id);
      break;
    }
    case ir::ValueKind::kArgument:
      break;
  }
  return id;
}

PointsTo::NodeId PointsTo::lookup(const ir::Value* v) const {
  auto it = value_nodes_.find(v);
  return it != value_nodes_.end() ? it->second : kNoNode;
}

void PointsTo::seed_constraints() {
  // Pass A: collect return-value nodes so direct-call wiring (pass B) and
  // on-the-fly indirect wiring can connect rets regardless of layout order.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() == ir::Opcode::kRet &&
            instr->operand_count() > 0) {
          return_nodes_[f.get()].push_back(node_of(instr->operand(0)));
        }
      }
    }
  }
  // Content of a global whose initializer could name memory is unknown.
  for (const auto& g : module_.globals()) {
    const std::int64_t init = g->initial_value();
    if (init < 0 || init >= kSafeConstantLimit) {
      set_unknown(find(content_node(object_ids_.at(g.get()))));
    }
  }
  // Pass B: per-instruction constraints.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        seed_instruction(*instr);
      }
    }
  }
}

void PointsTo::seed_instruction(const ir::Instruction& instr) {
  using ir::Opcode;
  const Opcode op = instr.opcode();
  if (is_arith(op)) {
    const NodeId result = node_of(&instr);
    for (const ir::Value* v : instr.operands()) {
      add_arith_edge(node_of(v), result);
    }
    return;
  }
  switch (op) {
    case Opcode::kAlloca:
    case Opcode::kMalloc:
      (void)node_of(&instr);  // seeds the address-of constraint
      break;
    case Opcode::kGep: {
      std::int64_t lo = kLoInf;
      std::int64_t hi = kHiInf;
      if (instr.operand_count() > 1 && instr.operand(1)->is_constant()) {
        lo = hi = static_cast<const ir::Constant*>(instr.operand(1))->value();
      }
      add_copy_edge(node_of(instr.operand(0)), node_of(&instr), lo, hi);
      break;
    }
    case Opcode::kPhi: {
      const NodeId result = node_of(&instr);
      for (const ir::Value* v : instr.phi_values()) {
        add_copy_edge(node_of(v), result);
      }
      break;
    }
    case Opcode::kLoad:
      add_load_user(node_of(instr.operand(0)), node_of(&instr));
      break;
    case Opcode::kStore:
      add_store_value(node_of(instr.operand(1)), node_of(instr.operand(0)));
      break;
    case Opcode::kAtomicRMWAdd: {
      const NodeId ptr = find(node_of(instr.operand(0)));
      const NodeId result = node_of(&instr);
      const NodeId delta = node_of(instr.operand(1));
      nodes_[ptr].rmw_users.emplace_back(result, delta);
      const auto pts = nodes_[ptr].pts;
      for (const ObjectId o : pts) {
        add_arith_edge(find(content_node(o)), result);
        add_arith_edge(find(content_node(o)), find(content_node(o)));
        add_arith_edge(delta, find(content_node(o)));
      }
      if (nodes_[find(ptr)].unknown) {
        unknown_store_ = true;
        set_unknown(result);
      }
      break;
    }
    case Opcode::kCall: {
      const ir::Function* callee = instr.callee();
      if (callee == nullptr) break;
      if (callee->is_internal() && callee->has_body()) {
        const std::size_t n =
            std::min(instr.operand_count(), callee->arguments().size());
        for (std::size_t i = 0; i < n; ++i) {
          add_copy_edge(node_of(instr.operand(i)),
                        node_of(callee->argument(i)));
        }
        auto rit = return_nodes_.find(callee);
        if (rit != return_nodes_.end()) {
          const NodeId result = node_of(&instr);
          for (const NodeId r : rit->second) add_copy_edge(r, result);
        }
      } else {
        // Opaque boundary: the result could be anything.
        set_unknown(find(node_of(&instr)));
      }
      break;
    }
    case Opcode::kCallPtr: {
      if (instr.operand_count() == 0) break;
      const NodeId target = find(node_of(instr.operand(0)));
      (void)node_of(&instr);
      nodes_[target].call_users.push_back(&instr);
      const auto pts = nodes_[target].pts;
      for (const ObjectId o : pts) {
        if (objects_[o].kind == ObjectKind::kFunction) {
          wire_indirect(&instr, o);
        } else {
          indirect_unresolved_.insert(&instr);
          set_unknown(find(node_of(&instr)));
        }
      }
      if (nodes_[find(target)].unknown) {
        indirect_unresolved_.insert(&instr);
        set_unknown(find(node_of(&instr)));
      }
      break;
    }
    case Opcode::kThreadCreate: {
      const ir::Function* entry = instr.callee();
      if (entry != nullptr && entry->has_body() &&
          !entry->arguments().empty() && instr.operand_count() > 0) {
        add_copy_edge(node_of(instr.operand(0)), node_of(entry->argument(0)));
      }
      break;
    }
    case Opcode::kInput:
      set_unknown(find(node_of(&instr)));
      break;
    case Opcode::kStrCpy:
    case Opcode::kMemCopy: {
      if (instr.operand_count() < 2) break;
      const auto index = static_cast<std::uint32_t>(copy_ops_.size());
      const NodeId dst = find(node_of(instr.operand(0)));
      const NodeId src = find(node_of(instr.operand(1)));
      copy_ops_.push_back({dst, src});
      nodes_[dst].copyop_users.push_back(index);
      if (src != dst) nodes_[src].copyop_users.push_back(index);
      process_copyop(index);
      break;
    }
    default:
      break;  // control flow, locks, annotations, env: no pointer effect
  }
}

void PointsTo::add_copy_edge(NodeId from, NodeId to, std::int64_t add_lo,
                             std::int64_t add_hi) {
  from = find(from);
  to = find(to);
  if (from == to && add_lo == 0 && add_hi == 0) return;
  if (add_lo == 0 && add_hi == 0) {
    // Dynamic edges (from complex constraints) are always zero-addend;
    // dedup them so re-processing stays cheap. Keys may go stale after
    // merges — a duplicate edge is harmless, just idempotent work.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(from) << 32) | to;
    if (!dyn_edge_seen_.insert(key).second) return;
  }
  nodes_[from].copy_out.push_back({to, add_lo, add_hi});
  ++stats_.copy_edges;
  edges_dirty_ = true;
  // Apply the source's current state through the new edge.
  const auto pts = nodes_[from].pts;
  for (const ObjectId o : pts) add_points_to(to, o);
  if (nodes_[find(from)].unknown) set_unknown(find(to));
  const OffsetRange off = nodes_[find(from)].off;
  if (off.lo <= off.hi) {
    push_offset(find(to), sat_add(off.lo, add_lo), sat_add(off.hi, add_hi));
  }
}

void PointsTo::add_arith_edge(NodeId from, NodeId to) {
  from = find(from);
  to = find(to);
  const std::uint64_t key =
      (1ULL << 63) | (static_cast<std::uint64_t>(from) << 31) | to;
  if (!dyn_edge_seen_.insert(key).second) return;
  nodes_[from].arith_out.push_back(to);
  if (nodes_[from].unknown || !nodes_[from].pts.empty()) {
    set_unknown(find(to));
  }
}

void PointsTo::add_load_user(NodeId ptr, NodeId result) {
  ptr = find(ptr);
  nodes_[ptr].load_users.push_back(result);
  const auto pts = nodes_[ptr].pts;
  for (const ObjectId o : pts) {
    add_copy_edge(content_node(o), result);
  }
  if (nodes_[find(ptr)].unknown) set_unknown(find(result));
}

void PointsTo::add_store_value(NodeId ptr, NodeId value) {
  ptr = find(ptr);
  nodes_[ptr].store_values.push_back(value);
  const auto pts = nodes_[ptr].pts;
  for (const ObjectId o : pts) {
    add_copy_edge(value, content_node(o));
  }
  if (nodes_[find(ptr)].unknown) unknown_store_ = true;
}

void PointsTo::add_points_to(NodeId n, ObjectId o) {
  n = find(n);
  auto& pts = nodes_[n].pts;
  auto it = std::lower_bound(pts.begin(), pts.end(), o);
  if (it != pts.end() && *it == o) return;
  pts.insert(it, o);
  nodes_[n].delta.push_back(o);
  ++stats_.propagations;
  schedule(n);
}

void PointsTo::set_unknown(NodeId n) {
  n = find(n);
  if (nodes_[n].unknown) return;
  nodes_[n].unknown = true;
  nodes_[n].unknown_handled = false;
  schedule(n);
}

void PointsTo::push_offset(NodeId to, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) return;  // empty source range: no pointer has flowed yet
  to = find(to);
  Node& node = nodes_[to];
  if (node.off.lo > node.off.hi) {
    // First range to arrive lands exactly; widening only kicks in on growth.
    node.off = {lo, hi};
    schedule(to);
    return;
  }
  bool widened = false;
  if (lo < node.off.lo) {
    node.off.lo = (++node.off_bumps > 8) ? kLoInf : lo;
    widened = true;
  }
  if (hi > node.off.hi) {
    node.off.hi = (++node.off_bumps > 8) ? kHiInf : hi;
    widened = true;
  }
  if (widened) schedule(to);
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

PointsTo::NodeId PointsTo::find(NodeId n) const {
  while (parent_[n] != n) {
    parent_[n] = parent_[parent_[n]];
    n = parent_[n];
  }
  return n;
}

void PointsTo::schedule(NodeId n) {
  if (nodes_[n].in_worklist) return;
  nodes_[n].in_worklist = true;
  worklist_.push_back(n);
}

void PointsTo::solve() {
  drain();
  // Dynamic edges can close new copy cycles; collapse and re-drain until
  // neither new edges nor new merges appear. Terminates: merges strictly
  // shrink the node count and propagation is monotone.
  while (edges_dirty_) {
    edges_dirty_ = false;
    if (collapse_cycles() == 0) break;
    drain();
  }
}

void PointsTo::drain() {
  while (!worklist_.empty()) {
    const NodeId n = worklist_.back();
    worklist_.pop_back();
    nodes_[n].in_worklist = false;
    process(find(n));
  }
}

void PointsTo::process(NodeId n) {
  if (nodes_[n].unknown && !nodes_[n].unknown_handled) process_unknown(n);

  // Push offset bounds along copy edges (monotone; widened at the sink).
  {
    const auto edges = nodes_[n].copy_out;
    const OffsetRange off = nodes_[n].off;
    if (off.lo <= off.hi) {
      for (const Edge& e : edges) {
        const NodeId dst = find(e.dst);
        if (dst == n && e.add_lo == 0 && e.add_hi == 0) continue;
        push_offset(dst, sat_add(off.lo, e.add_lo), sat_add(off.hi, e.add_hi));
      }
    }
  }

  std::vector<ObjectId> delta;
  delta.swap(nodes_[n].delta);
  if (!delta.empty()) {
    // Newly pointed-to objects flow to copy targets and complex users.
    // Snapshot the user lists: wiring can grow nodes_ (invalidating
    // references) and merge-free growth of these lists is re-applied at
    // registration time anyway.
    const auto edges = nodes_[n].copy_out;
    const auto loads = nodes_[n].load_users;
    const auto stores = nodes_[n].store_values;
    const auto rmws = nodes_[n].rmw_users;
    const auto calls = nodes_[n].call_users;
    const auto ariths = nodes_[n].arith_out;
    for (const ObjectId o : delta) {
      for (const Edge& e : edges) add_points_to(e.dst, o);
      for (const NodeId r : loads) add_copy_edge(content_node(o), r);
      for (const NodeId v : stores) add_copy_edge(v, content_node(o));
      for (const auto& [result, rmw_delta] : rmws) {
        add_arith_edge(content_node(o), result);
        add_arith_edge(content_node(o), content_node(o));
        add_arith_edge(rmw_delta, content_node(o));
      }
      for (const ir::Instruction* callptr : calls) {
        if (objects_[o].kind == ObjectKind::kFunction) {
          wire_indirect(callptr, o);
        } else {
          indirect_unresolved_.insert(callptr);
          set_unknown(find(node_of(callptr)));
        }
      }
    }
    // A pointer-bearing value makes every arithmetic consumer unknown.
    for (const NodeId t : ariths) set_unknown(find(t));
  }

  const auto copyops = nodes_[n].copyop_users;
  for (const std::uint32_t index : copyops) process_copyop(index);
}

void PointsTo::process_unknown(NodeId n) {
  nodes_[n].unknown_handled = true;
  const auto edges = nodes_[n].copy_out;
  const auto ariths = nodes_[n].arith_out;
  const auto loads = nodes_[n].load_users;
  const auto rmws = nodes_[n].rmw_users;
  const auto calls = nodes_[n].call_users;
  const auto copyops = nodes_[n].copyop_users;
  for (const Edge& e : edges) set_unknown(find(e.dst));
  for (const NodeId t : ariths) set_unknown(find(t));
  for (const NodeId r : loads) set_unknown(find(r));
  if (!nodes_[n].store_values.empty()) unknown_store_ = true;
  for (const auto& [result, rmw_delta] : rmws) {
    (void)rmw_delta;
    unknown_store_ = true;
    set_unknown(find(result));
  }
  for (const ir::Instruction* callptr : calls) {
    indirect_unresolved_.insert(callptr);
    set_unknown(find(node_of(callptr)));
  }
  for (const std::uint32_t index : copyops) process_copyop(index);
}

void PointsTo::process_copyop(std::uint32_t index) {
  const CopyOp op = copy_ops_[index];
  const NodeId dst = find(op.dst);
  const NodeId src = find(op.src);
  if (nodes_[dst].unknown) unknown_store_ = true;
  const auto dst_pts = nodes_[dst].pts;
  const auto src_pts = nodes_[src].pts;
  const bool src_unknown = nodes_[src].unknown;
  for (const ObjectId od : dst_pts) {
    if (src_unknown) set_unknown(find(content_node(od)));
    for (const ObjectId os : src_pts) {
      add_copy_edge(content_node(os), content_node(od));
    }
  }
}

void PointsTo::wire_indirect(const ir::Instruction* callptr,
                             ObjectId fn_object) {
  auto& targets = indirect_targets_[callptr];
  auto it = std::lower_bound(targets.begin(), targets.end(), fn_object);
  if (it != targets.end() && *it == fn_object) return;
  targets.insert(it, fn_object);
  ir::Function* callee = object_functions_[fn_object];
  if (callee == nullptr) return;
  if (callee->is_internal() && callee->has_body()) {
    // Operand 0 is the target; operand i+1 binds to argument i.
    const std::size_t n = std::min(
        callptr->operand_count() > 0 ? callptr->operand_count() - 1 : 0,
        callee->arguments().size());
    for (std::size_t i = 0; i < n; ++i) {
      add_copy_edge(node_of(callptr->operand(i + 1)),
                    node_of(callee->argument(i)));
    }
    auto rit = return_nodes_.find(callee);
    if (rit != return_nodes_.end()) {
      const NodeId result = node_of(callptr);
      for (const NodeId r : rit->second) add_copy_edge(r, result);
    }
  } else {
    // External target: opaque result, like a direct external call.
    set_unknown(find(node_of(callptr)));
  }
}

std::size_t PointsTo::collapse_cycles() {
  // Iterative Tarjan over the copy-edge graph of representatives. SCCs are
  // collected first and merged afterwards so node ids stay stable during
  // the walk. Cycles through nonzero-addend (gep) edges also collapse —
  // their member sets are equal by mutual inclusion — and the surviving
  // self-edge keeps driving the offset bound to saturation, which is
  // exactly right for a gep executed in a loop.
  const std::size_t count = nodes_.size();
  std::vector<std::uint32_t> index(count, 0), low(count, 0);
  std::vector<char> on_stack(count, 0);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> sccs;
  std::uint32_t next_index = 1;

  struct Frame {
    NodeId node;
    std::size_t edge = 0;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < count; ++root) {
    if (find(root) != root || index[root] != 0) continue;
    frames.push_back({root});
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const NodeId n = fr.node;
      if (fr.edge == 0) {
        index[n] = low[n] = next_index++;
        stack.push_back(n);
        on_stack[n] = 1;
      }
      bool descended = false;
      while (fr.edge < nodes_[n].copy_out.size()) {
        const NodeId m = find(nodes_[n].copy_out[fr.edge].dst);
        ++fr.edge;
        if (m == n) continue;
        if (index[m] == 0) {
          frames.push_back({m});
          descended = true;
          break;
        }
        if (on_stack[m]) low[n] = std::min(low[n], index[m]);
      }
      if (descended) continue;
      if (low[n] == index[n]) {
        std::vector<NodeId> scc;
        while (true) {
          const NodeId m = stack.back();
          stack.pop_back();
          on_stack[m] = 0;
          scc.push_back(m);
          if (m == n) break;
        }
        if (scc.size() > 1) sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] =
            std::min(low[frames.back().node], low[n]);
      }
    }
  }

  std::size_t merges = 0;
  for (auto& scc : sccs) {
    const NodeId rep = *std::min_element(scc.begin(), scc.end());
    for (const NodeId m : scc) {
      if (m == rep) continue;
      merge(rep, m);
      ++merges;
    }
  }
  stats_.scc_merges += merges;
  return merges;
}

void PointsTo::merge(NodeId into, NodeId from) {
  assert(find(into) == into && find(from) == from && into != from);
  parent_[from] = into;
  Node& a = nodes_[into];
  Node& b = nodes_[from];
  // Union the points-to sets; schedule a full re-push so every user on the
  // merged lists sees every object (redundant pushes are idempotent).
  std::vector<ObjectId> merged;
  merged.reserve(a.pts.size() + b.pts.size());
  std::set_union(a.pts.begin(), a.pts.end(), b.pts.begin(), b.pts.end(),
                 std::back_inserter(merged));
  a.pts = std::move(merged);
  a.delta = a.pts;
  auto move_into = [](auto& dst, auto& src) {
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
    src.shrink_to_fit();
  };
  move_into(a.copy_out, b.copy_out);
  move_into(a.arith_out, b.arith_out);
  move_into(a.load_users, b.load_users);
  move_into(a.store_values, b.store_values);
  move_into(a.rmw_users, b.rmw_users);
  move_into(a.call_users, b.call_users);
  move_into(a.copyop_users, b.copyop_users);
  a.off.lo = std::min(a.off.lo, b.off.lo);
  a.off.hi = std::max(a.off.hi, b.off.hi);
  a.off_bumps = std::max(a.off_bumps, b.off_bumps);
  if (b.unknown) a.unknown = true;
  if (a.unknown) a.unknown_handled = false;
  b.pts.clear();
  b.delta.clear();
  schedule(into);
}

// ---------------------------------------------------------------------------
// Public queries
// ---------------------------------------------------------------------------

const std::vector<PointsTo::ObjectId>& PointsTo::points_to(
    const ir::Value* v) const {
  const NodeId n = lookup(v);
  return n == kNoNode ? kEmptySet : nodes_[find(n)].pts;
}

bool PointsTo::is_unknown(const ir::Value* v) const {
  const NodeId n = lookup(v);
  return n != kNoNode && nodes_[find(n)].unknown;
}

PointsTo::OffsetRange PointsTo::offset_range(const ir::Value* v) const {
  const NodeId n = lookup(v);
  if (n == kNoNode) return OffsetRange{};
  const OffsetRange off = nodes_[find(n)].off;
  return off.lo > off.hi ? OffsetRange{} : off;
}

bool PointsTo::id_of_site(const ir::Value* site, ObjectId& id) const {
  auto it = object_ids_.find(site);
  if (it == object_ids_.end()) return false;
  id = it->second;
  return true;
}

const std::vector<PointsTo::ObjectId>& PointsTo::object_points_to(
    ObjectId o) const {
  return nodes_[find(content_node(o))].pts;
}

bool PointsTo::object_content_unknown(ObjectId o) const {
  return nodes_[find(content_node(o))].unknown;
}

bool PointsTo::object_size(ObjectId o, std::uint64_t& cells) const {
  const AbstractObject& obj = objects_[o];
  switch (obj.kind) {
    case ObjectKind::kGlobal:
      cells = static_cast<const ir::GlobalVariable*>(obj.site)->cell_count();
      return true;
    case ObjectKind::kStack: {
      const auto imm = static_cast<const ir::Instruction*>(obj.site)->imm();
      if (imm < 0) return false;
      cells = static_cast<std::uint64_t>(imm);
      return true;
    }
    case ObjectKind::kHeap: {
      const auto* instr = static_cast<const ir::Instruction*>(obj.site);
      if (instr->operand_count() == 0 || !instr->operand(0)->is_constant()) {
        return false;
      }
      const auto count =
          static_cast<const ir::Constant*>(instr->operand(0))->value();
      if (count < 0) return false;
      cells = static_cast<std::uint64_t>(count);
      return true;
    }
    case ObjectKind::kFunction:
      return false;
  }
  return false;
}

std::vector<ir::Function*> PointsTo::resolve_indirect(
    const ir::Instruction* callptr) const {
  std::vector<ir::Function*> out;
  auto it = indirect_targets_.find(callptr);
  if (it == indirect_targets_.end()) return out;
  out.reserve(it->second.size());
  for (const ObjectId o : it->second) {
    if (object_functions_[o] != nullptr) out.push_back(object_functions_[o]);
  }
  return out;
}

bool PointsTo::indirect_unresolved(const ir::Instruction* callptr) const {
  return indirect_unresolved_.count(callptr) != 0;
}

}  // namespace owl::analysis
