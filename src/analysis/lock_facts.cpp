#include "analysis/lock_facts.hpp"

#include <algorithm>
#include <optional>

#include "ir/instruction.hpp"

namespace owl::analysis {

namespace {

void insert_sorted(std::vector<PointsTo::ObjectId>& set,
                   PointsTo::ObjectId v) {
  auto it = std::lower_bound(set.begin(), set.end(), v);
  if (it == set.end() || *it != v) set.insert(it, v);
}

void erase_sorted(std::vector<PointsTo::ObjectId>& set, PointsTo::ObjectId v) {
  auto it = std::lower_bound(set.begin(), set.end(), v);
  if (it != set.end() && *it == v) set.erase(it);
}

std::vector<PointsTo::ObjectId> intersect_sorted(
    const std::vector<PointsTo::ObjectId>& a,
    const std::vector<PointsTo::ObjectId>& b) {
  std::vector<PointsTo::ObjectId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

const LockFacts::LockSet LockFacts::kEmptySet;

LockFacts::LockFacts(const ir::Module& module, const PointsTo& pt,
                     const ir::IndirectCallMap& resolved)
    : module_(module), pt_(pt), resolved_(resolved) {
  undisciplined_.assign(pt_.objects().size(), 0);
  compute_may_release();
  compute_locksets();
  compute_discipline();
}

const LockFacts::LockSet& LockFacts::must_held_before(
    const ir::Instruction* instr) const {
  auto it = must_before_.find(instr);
  return it == must_before_.end() ? kEmptySet : it->second;
}

bool LockFacts::lock_token(const ir::Value* operand,
                           PointsTo::ObjectId& token) const {
  if (operand->kind() != ir::ValueKind::kGlobalVariable) return false;
  return pt_.id_of_site(operand, token);
}

void LockFacts::call_targets(const ir::Instruction& instr,
                             std::vector<const ir::Function*>& targets,
                             bool& unknown) const {
  if (instr.opcode() == ir::Opcode::kCall) {
    const ir::Function* callee = instr.callee();
    if (callee != nullptr && callee->is_internal() && callee->has_body()) {
      targets.push_back(callee);
    }
    return;
  }
  if (instr.opcode() == ir::Opcode::kCallPtr) {
    if (pt_.indirect_unresolved(&instr)) {
      unknown = true;
      return;
    }
    auto it = resolved_.find(&instr);
    if (it == resolved_.end()) return;
    for (const ir::Function* target : it->second) {
      if (target->is_internal() && target->has_body()) {
        targets.push_back(target);
      }
    }
  }
}

bool LockFacts::call_released_tokens(const ir::Instruction& instr,
                                     LockSet& out) const {
  out.clear();
  std::vector<const ir::Function*> targets;
  bool unknown = false;
  call_targets(instr, targets, unknown);
  if (unknown) return false;
  for (const ir::Function* target : targets) {
    if (release_unknown_.count(target) != 0) return false;
    auto it = released_.find(target);
    if (it == released_.end()) continue;
    for (const PointsTo::ObjectId token : it->second) {
      insert_sorted(out, token);
    }
  }
  return true;
}

bool LockFacts::call_may_release(const ir::Instruction& instr) const {
  LockSet tokens;
  if (!call_released_tokens(instr, tokens)) return true;
  return !tokens.empty();
}

bool LockFacts::call_may_release(const ir::Instruction& instr,
                                 PointsTo::ObjectId token) const {
  LockSet tokens;
  if (!call_released_tokens(instr, tokens)) return true;
  return std::binary_search(tokens.begin(), tokens.end(), token);
}

void LockFacts::compute_may_release() {
  // Seed: a function's own unlocks. A token-resolved unlock releases
  // exactly that token; anything else may release any mutex.
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != ir::Opcode::kUnlock) continue;
        PointsTo::ObjectId token = 0;
        if (instr->operand_count() > 0 &&
            lock_token(instr->operand(0), token)) {
          insert_sorted(released_[f.get()], token);
        } else {
          release_unknown_.insert(f.get());
        }
        may_release_.insert(f.get());
      }
    }
  }
  // Transitive closure over calls: a caller inherits everything its
  // callees may release; an unresolved indirect call may release anything.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& f : module_.functions()) {
      for (const auto& bb : f->blocks()) {
        for (const auto& instr : bb->instructions()) {
          if (!instr->is_call()) continue;
          std::vector<const ir::Function*> targets;
          bool unknown = false;
          call_targets(*instr, targets, unknown);
          for (const ir::Function* target : targets) {
            if (release_unknown_.count(target) != 0) unknown = true;
          }
          if (unknown && release_unknown_.count(f.get()) == 0) {
            release_unknown_.insert(f.get());
            may_release_.insert(f.get());
            changed = true;
          }
          for (const ir::Function* target : targets) {
            auto it = released_.find(target);
            if (it == released_.end()) continue;
            LockSet& mine = released_[f.get()];
            for (const PointsTo::ObjectId token : it->second) {
              if (!std::binary_search(mine.begin(), mine.end(), token)) {
                insert_sorted(mine, token);
                may_release_.insert(f.get());
                changed = true;
              }
            }
          }
        }
      }
    }
  }
}

void LockFacts::compute_locksets() {
  for (const auto& f : module_.functions()) {
    if (!f->has_body()) continue;
    auto transfer = [&](LockSet& cur, const ir::Instruction& instr) {
      PointsTo::ObjectId token = 0;
      switch (instr.opcode()) {
        case ir::Opcode::kLock:
          if (instr.operand_count() > 0 &&
              lock_token(instr.operand(0), token)) {
            insert_sorted(cur, token);
          }
          break;
        case ir::Opcode::kUnlock:
          if (instr.operand_count() > 0 &&
              lock_token(instr.operand(0), token)) {
            erase_sorted(cur, token);
          } else {
            cur.clear();  // released an unidentifiable mutex
          }
          break;
        case ir::Opcode::kCall:
        case ir::Opcode::kCallPtr: {
          LockSet released;
          if (!call_released_tokens(instr, released)) {
            cur.clear();  // may release an unidentifiable mutex
          } else {
            for (const PointsTo::ObjectId t : released) erase_sorted(cur, t);
          }
          break;
        }
        default:
          break;
      }
    };

    std::unordered_map<const ir::BasicBlock*, std::optional<LockSet>> in;
    for (const auto& bb : f->blocks()) in[bb.get()] = std::nullopt;
    in[f->entry()] = LockSet{};
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& bb : f->blocks()) {
        const auto& state = in[bb.get()];
        if (!state.has_value()) continue;
        LockSet out = *state;
        for (const auto& instr : bb->instructions()) transfer(out, *instr);
        if (bb->instructions().empty()) continue;
        for (const ir::BasicBlock* succ :
             bb->instructions().back()->targets()) {
          auto& sin = in[succ];
          if (!sin.has_value()) {
            sin = out;
            changed = true;
          } else {
            LockSet met = intersect_sorted(*sin, out);
            if (met != *sin) {
              sin = std::move(met);
              changed = true;
            }
          }
        }
      }
    }

    // Record the must-set immediately before every event/lock/unlock site.
    for (const auto& bb : f->blocks()) {
      LockSet cur = in[bb.get()].value_or(LockSet{});
      for (const auto& instr : bb->instructions()) {
        switch (instr->opcode()) {
          case ir::Opcode::kLoad:
          case ir::Opcode::kStore:
          case ir::Opcode::kAtomicRMWAdd:
          case ir::Opcode::kStrCpy:
          case ir::Opcode::kMemCopy:
          case ir::Opcode::kLock:
          case ir::Opcode::kUnlock:
            must_before_[instr.get()] = cur;
            break;
          default:
            break;
        }
        transfer(cur, *instr);
      }
    }
  }
}

void LockFacts::compute_discipline() {
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        const ir::Opcode op = instr->opcode();
        if (op != ir::Opcode::kLock && op != ir::Opcode::kUnlock) continue;
        if (instr->operand_count() == 0) continue;
        const ir::Value* operand = instr->operand(0);
        PointsTo::ObjectId token = 0;
        if (lock_token(operand, token)) {
          lock_sites_.push_back(LockSite{instr.get(), f.get(), token,
                                         op == ir::Opcode::kLock});
          if (op == ir::Opcode::kUnlock) {
            const auto& held = must_held_before(instr.get());
            if (!std::binary_search(held.begin(), held.end(), token)) {
              undisciplined_[token] = 1;  // foreign/unpaired unlock
            }
          }
          continue;
        }
        if (operand->is_constant()) {
          const auto v = static_cast<const ir::Constant*>(operand)->value();
          if (v >= 0 && v < kSafeConstantLimit) continue;  // guard-page mutex
        }
        const auto& pts = pt_.points_to(operand);
        if (pt_.is_unknown(operand) || pts.empty()) {
          all_undisciplined_ = true;  // could pair with any mutex
        } else {
          for (const PointsTo::ObjectId o : pts) undisciplined_[o] = 1;
        }
      }
    }
  }
}

std::string LockFacts::serialize() const {
  std::string out;
  out += "all_undisciplined=" + std::string(all_undisciplined_ ? "1" : "0") +
         "\n";
  auto token_name = [&](PointsTo::ObjectId t) {
    return pt_.objects()[t].site->name();
  };
  for (const auto& f : module_.functions()) {
    for (const auto& bb : f->blocks()) {
      const auto& instrs = bb->instructions();
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        auto it = must_before_.find(instrs[i].get());
        if (it == must_before_.end()) continue;
        out += f->name() + " " + bb->label() + "#" + std::to_string(i) + " " +
               std::string(ir::opcode_name(instrs[i]->opcode())) + " must={";
        for (std::size_t k = 0; k < it->second.size(); ++k) {
          if (k != 0) out += ",";
          out += token_name(it->second[k]);
        }
        out += "}\n";
      }
    }
  }
  for (const auto& site : lock_sites_) {
    out += std::string(site.is_acquire ? "acquire " : "release ") +
           token_name(site.token) +
           " wf=" + (well_formed(site.token) ? "1" : "0") + " at " +
           site.instr->loc().to_string() + "\n";
  }
  return out;
}

}  // namespace owl::analysis
