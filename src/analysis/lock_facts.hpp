// Reusable whole-module lock facts (DESIGN.md §11), extracted from the
// prescreen so the checker suite and the prescreen consume one computation:
//
//  * a forward must-lockset dataflow per function (meet = intersection,
//    entry = ∅ — callers may hold locks we cannot see, and claiming fewer
//    held locks is the safe direction), recording the must-held token set
//    immediately before every access/lock/unlock site;
//  * a may-release closure over the call graph tracking WHICH tokens each
//    function may transitively unlock, so a call drops exactly the released
//    tokens from the must set (resolved indirect calls included); only a
//    callee that may release an unidentifiable mutex — or an unresolved
//    indirect call — still clears the whole set;
//  * lock discipline: a mutex token is well-formed only when every
//    lock/unlock of it names the global directly and every unlock provably
//    holds it (a foreign unlock could break a happens-before chain
//    mid-critical-section, so such tokens prove nothing);
//  * the flat, deterministic list of token-resolved lock/unlock sites in
//    module order, which the deadlock and lock-mismatch checkers walk.
//
// Tokens are PointsTo object ids of global mutex variables; anything else
// (computed pointers, unknown values) degrades conservatively exactly as the
// pre-refactor prescreen did — the golden-fact snapshots under
// tests/golden/prescreen_facts/ pin that equivalence.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/points_to.hpp"
#include "ir/callgraph.hpp"

namespace owl::analysis {

class LockFacts {
 public:
  using LockSet = std::vector<PointsTo::ObjectId>;

  LockFacts(const ir::Module& module, const PointsTo& pt,
            const ir::IndirectCallMap& resolved);

  /// Must-held lock tokens immediately before `instr` (empty set for
  /// instructions the dataflow never recorded: non-access, non-lock sites).
  const LockSet& must_held_before(const ir::Instruction* instr) const;
  /// True when the dataflow recorded a fact for `instr`.
  bool has_fact(const ir::Instruction* instr) const {
    return must_before_.count(instr) != 0;
  }

  /// Resolves a lock/unlock operand to its token: the operand must name a
  /// global variable directly (computed mutexes prove nothing).
  bool lock_token(const ir::Value* operand, PointsTo::ObjectId& token) const;

  /// True when executing `instr` (a call site) may release some mutex.
  bool call_may_release(const ir::Instruction& instr) const;
  /// True when executing `instr` (a call site) may release `token`
  /// specifically (or some mutex the analysis cannot identify).
  bool call_may_release(const ir::Instruction& instr,
                        PointsTo::ObjectId token) const;
  /// Fills `out` with the sorted tokens `instr` (a call site) may
  /// transitively release. Returns false when the call may release an
  /// unidentifiable mutex — the caller must then drop every held token.
  bool call_released_tokens(const ir::Instruction& instr,
                            LockSet& out) const;
  /// True when `fn` (or anything it may call) contains an unlock.
  bool function_may_release(const ir::Function* fn) const {
    return may_release_.count(fn) != 0;
  }

  /// Lock-discipline verdict for a token (see file comment).
  bool well_formed(PointsTo::ObjectId token) const {
    return !all_undisciplined_ && undisciplined_[token] == 0;
  }
  /// True when some lock/unlock operand could pair with any mutex.
  bool all_undisciplined() const noexcept { return all_undisciplined_; }

  /// One token-resolved lock/unlock site, in module declaration order.
  struct LockSite {
    const ir::Instruction* instr = nullptr;
    const ir::Function* function = nullptr;
    PointsTo::ObjectId token = 0;
    bool is_acquire = false;
  };
  const std::vector<LockSite>& lock_sites() const noexcept {
    return lock_sites_;
  }

  /// Deterministic text snapshot of every recorded fact (golden tests).
  std::string serialize() const;

 private:
  void compute_may_release();
  void compute_locksets();
  void compute_discipline();

  const ir::Module& module_;
  const PointsTo& pt_;
  const ir::IndirectCallMap& resolved_;

  void call_targets(const ir::Instruction& instr,
                    std::vector<const ir::Function*>& targets,
                    bool& unknown) const;

  std::unordered_set<const ir::Function*> may_release_;
  /// Tokens each function may transitively release (sorted, deduped).
  std::unordered_map<const ir::Function*, LockSet> released_;
  /// Functions that may release a mutex the analysis cannot identify.
  std::unordered_set<const ir::Function*> release_unknown_;
  std::unordered_map<const ir::Instruction*, LockSet> must_before_;
  std::vector<char> undisciplined_;
  bool all_undisciplined_ = false;
  std::vector<LockSite> lock_sites_;

  static const LockSet kEmptySet;
};

}  // namespace owl::analysis
