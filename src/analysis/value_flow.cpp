#include "analysis/value_flow.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ir/function.hpp"
#include "ir/instruction.hpp"
#include "support/strings.hpp"

namespace owl::analysis {

namespace {

/// Call targets with bodies the binding edges descend into. kThreadCreate
/// binds its single argument like a one-parameter call; kCallPtr uses the
/// points-to resolved map (empty when unresolved — the conservative gap is
/// reported through PointsTo::indirect_unresolved, not silently bridged).
std::vector<const ir::Function*> internal_targets(
    const ir::Instruction& instr, const ir::IndirectCallMap& resolved) {
  std::vector<const ir::Function*> targets;
  if (instr.opcode() == ir::Opcode::kCall ||
      instr.opcode() == ir::Opcode::kThreadCreate) {
    if (instr.callee() != nullptr && instr.callee()->has_body()) {
      targets.push_back(instr.callee());
    }
  } else if (instr.opcode() == ir::Opcode::kCallPtr) {
    const auto it = resolved.find(&instr);
    if (it != resolved.end()) {
      for (const ir::Function* f : it->second) {
        if (f != nullptr && f->has_body()) targets.push_back(f);
      }
    }
  }
  return targets;
}

/// Actual-argument operands of a call-like site, in formal order.
std::vector<const ir::Value*> actual_args(const ir::Instruction& instr) {
  std::vector<const ir::Value*> args;
  switch (instr.opcode()) {
    case ir::Opcode::kCall:
    case ir::Opcode::kThreadCreate:
      for (const ir::Value* op : instr.operands()) args.push_back(op);
      break;
    case ir::Opcode::kCallPtr:
      for (std::size_t i = 1; i < instr.operand_count(); ++i) {
        args.push_back(instr.operand(i));
      }
      break;
    default:
      break;
  }
  return args;
}

/// Pointer operand whose points-to set a memory write goes through, or
/// nullptr when `instr` writes no memory. kStrCpy/kMemCopy write their
/// destination region — the same classification the interpreter's
/// Observer::Access write events use.
const ir::Value* written_pointer(const ir::Instruction& instr) {
  switch (instr.opcode()) {
    case ir::Opcode::kStore: return instr.operand(1);
    case ir::Opcode::kAtomicRMWAdd: return instr.operand(0);
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy: return instr.operand(0);
    default: return nullptr;
  }
}

/// Pointer operand a memory read goes through, or nullptr. kAtomicRMWAdd
/// is deliberately absent: the interpreter emits only a write Access for
/// it, so runtime evidence can never pair it as a reader; its result is
/// instead fed by mem edges *into* it being unnecessary — corruption of
/// the cell it increments reaches later kLoads of the same object
/// directly from the original writer.
const ir::Value* read_pointer(const ir::Instruction& instr) {
  switch (instr.opcode()) {
    case ir::Opcode::kLoad: return instr.operand(0);
    case ir::Opcode::kStrCpy:
    case ir::Opcode::kMemCopy: return instr.operand(1);
    default: return nullptr;
  }
}

}  // namespace

const std::vector<const ir::Instruction*> ValueFlowGraph::kEmptyList;

ValueFlowGraph::ValueFlowGraph(const ir::Module& module, const PointsTo& pt,
                               const ir::IndirectCallMap& resolved) {
  add_nodes(module);
  add_def_use_edges();
  add_call_edges(resolved);
  add_mem_edges(pt);
  // Successor lists accumulate in discovery order; canonicalize to node
  // order so consumers and the golden dump never depend on it.
  auto sort_adjacency =
      [this](std::unordered_map<const ir::Instruction*,
                                std::vector<const ir::Instruction*>>& adj) {
        for (auto& [def, succs] : adj) {
          (void)def;
          std::sort(succs.begin(), succs.end(),
                    [this](const ir::Instruction* a, const ir::Instruction* b) {
                      return index_.at(a) < index_.at(b);
                    });
        }
      };
  sort_adjacency(uses_);
  sort_adjacency(mem_succ_);
  stats_.nodes = nodes_.size();
}

void ValueFlowGraph::add_nodes(const ir::Module& module) {
  for (const auto& function : module.functions()) {
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        index_.emplace(instr.get(), nodes_.size());
        nodes_.push_back(instr.get());
      }
    }
  }
}

void ValueFlowGraph::add_use(const ir::Instruction* def,
                             const ir::Instruction* use, bool call_edge) {
  std::vector<const ir::Instruction*>& succs = uses_[def];
  if (std::find(succs.begin(), succs.end(), use) != succs.end()) return;
  succs.push_back(use);
  if (call_edge) {
    ++stats_.call_edges;
  } else {
    ++stats_.def_use_edges;
  }
}

void ValueFlowGraph::add_def_use_edges() {
  for (const ir::Instruction* instr : nodes_) {
    auto wire = [&](const ir::Value* op) {
      if (op != nullptr && op->kind() == ir::ValueKind::kInstruction) {
        add_use(static_cast<const ir::Instruction*>(op), instr,
                /*call_edge=*/false);
      }
    };
    for (const ir::Value* op : instr->operands()) wire(op);
    for (const ir::Value* incoming : instr->phi_values()) wire(incoming);
  }
}

void ValueFlowGraph::add_call_edges(const ir::IndirectCallMap& resolved) {
  // Uses of each formal argument, gathered once per function on demand.
  std::unordered_map<const ir::Value*, std::vector<const ir::Instruction*>>
      arg_uses;
  std::unordered_set<const ir::Function*> scanned;
  auto scan_function = [&](const ir::Function* f) {
    if (!scanned.insert(f).second) return;
    for (const auto& block : f->blocks()) {
      for (const auto& instr : block->instructions()) {
        auto record = [&](const ir::Value* op) {
          if (op != nullptr && op->kind() == ir::ValueKind::kArgument) {
            arg_uses[op].push_back(instr.get());
          }
        };
        for (const ir::Value* op : instr->operands()) record(op);
        for (const ir::Value* incoming : instr->phi_values()) record(incoming);
      }
    }
  };

  for (const ir::Instruction* site : nodes_) {
    if (!site->is_call() && site->opcode() != ir::Opcode::kThreadCreate) {
      continue;
    }
    const std::vector<const ir::Value*> args = actual_args(*site);
    for (const ir::Function* callee : internal_targets(*site, resolved)) {
      scan_function(callee);
      // Actual argument i flows to every use of formal i in the callee.
      const std::size_t bound =
          std::min(args.size(), callee->arguments().size());
      for (std::size_t i = 0; i < bound; ++i) {
        if (args[i]->kind() != ir::ValueKind::kInstruction) continue;
        const auto it = arg_uses.find(callee->argument(i));
        if (it == arg_uses.end()) continue;
        for (const ir::Instruction* use : it->second) {
          add_use(static_cast<const ir::Instruction*>(args[i]), use,
                  /*call_edge=*/true);
        }
      }
      // A kRet operand flows back into the call-site result. Thread
      // creation returns a tid, never the entry's value.
      if (site->opcode() == ir::Opcode::kThreadCreate) continue;
      for (const auto& block : callee->blocks()) {
        for (const auto& instr : block->instructions()) {
          if (instr->opcode() != ir::Opcode::kRet) continue;
          if (instr->operand_count() == 0) continue;
          const ir::Value* ret = instr->operand(0);
          if (ret->kind() == ir::ValueKind::kInstruction) {
            add_use(static_cast<const ir::Instruction*>(ret), site,
                    /*call_edge=*/true);
          }
        }
      }
    }
  }
}

void ValueFlowGraph::add_mem_edges(const PointsTo& pt) {
  // Per abstract object: writers and readers in node order, then the
  // cross product — may-alias is exactly "points-to sets intersect".
  std::map<PointsTo::ObjectId, std::vector<const ir::Instruction*>> writers;
  std::map<PointsTo::ObjectId, std::vector<const ir::Instruction*>> readers;
  for (const ir::Instruction* instr : nodes_) {
    if (const ir::Value* ptr = written_pointer(*instr)) {
      if (pt.is_unknown(ptr)) unknown_writes_.insert(instr);
      for (const PointsTo::ObjectId o : pt.points_to(ptr)) {
        writers[o].push_back(instr);
      }
    }
    if (const ir::Value* ptr = read_pointer(*instr)) {
      if (pt.is_unknown(ptr)) unknown_reads_.insert(instr);
      for (const PointsTo::ObjectId o : pt.points_to(ptr)) {
        readers[o].push_back(instr);
      }
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& [object, write_list] : writers) {
    const auto it = readers.find(object);
    if (it == readers.end()) continue;
    for (const ir::Instruction* writer : write_list) {
      for (const ir::Instruction* reader : it->second) {
        if (writer == reader) continue;
        if (!seen.insert({index_.at(writer), index_.at(reader)}).second) {
          continue;
        }
        mem_succ_[writer].push_back(reader);
        ++stats_.mem_edges;
      }
    }
  }
}

bool ValueFlowGraph::node_index(const ir::Instruction* instr,
                                std::size_t& out) const {
  const auto it = index_.find(instr);
  if (it == index_.end()) return false;
  out = it->second;
  return true;
}

const std::vector<const ir::Instruction*>& ValueFlowGraph::uses(
    const ir::Instruction* def) const {
  const auto it = uses_.find(def);
  return it == uses_.end() ? kEmptyList : it->second;
}

const std::vector<const ir::Instruction*>& ValueFlowGraph::mem_successors(
    const ir::Instruction* writer) const {
  const auto it = mem_succ_.find(writer);
  return it == mem_succ_.end() ? kEmptyList : it->second;
}

bool ValueFlowGraph::has_mem_edge(const ir::Instruction* writer,
                                  const ir::Instruction* reader) const {
  const std::vector<const ir::Instruction*>& succs = mem_successors(writer);
  return std::find(succs.begin(), succs.end(), reader) != succs.end();
}

std::string ValueFlowGraph::serialize() const {
  std::string out = str_format(
      "valueflow-v1 nodes=%zu defuse=%zu call=%zu mem=%zu\n", stats_.nodes,
      stats_.def_use_edges, stats_.call_edges, stats_.mem_edges);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ir::Instruction* instr = nodes_[i];
    out += str_format(
        "node %zu @%s/%s/%zu %s", i, instr->function()->name().c_str(),
        instr->parent()->label().c_str(), instr->parent()->index_of(instr),
        std::string(ir::opcode_name(instr->opcode())).c_str());
    if (!instr->name().empty()) out += " %" + instr->name();
    out += "\n";
  }
  auto dump_edges = [&](const char* tag, const auto& adjacency) {
    for (const ir::Instruction* def : nodes_) {
      const auto it = adjacency.find(def);
      if (it == adjacency.end()) continue;
      for (const ir::Instruction* succ : it->second) {
        out += str_format("%s %zu -> %zu\n", tag, index_.at(def),
                          index_.at(succ));
      }
    }
  };
  dump_edges("use", uses_);
  dump_edges("mem", mem_succ_);
  for (const ir::Instruction* instr : nodes_) {
    if (unknown_writes_.count(instr) != 0) {
      out += str_format("unknown-write %zu\n", index_.at(instr));
    }
  }
  for (const ir::Instruction* instr : nodes_) {
    if (unknown_reads_.count(instr) != 0) {
      out += str_format("unknown-read %zu\n", index_.at(instr));
    }
  }
  return out;
}

std::vector<InterprocLockEdge> interprocedural_lock_edges(
    const ir::Module& module, const LockFacts& facts,
    const ir::IndirectCallMap& resolved) {
  const ir::CallGraph cg(module, resolved);
  std::map<std::pair<PointsTo::ObjectId, PointsTo::ObjectId>,
           InterprocLockEdge>
      edges;  // first witness in module order wins
  for (const auto& function : module.functions()) {
    for (const auto& block : function->blocks()) {
      // Straight-line must-held set from the block head: locks acquired in
      // a predecessor block are missed (fewer edges — the safe direction),
      // never falsely claimed.
      std::set<PointsTo::ObjectId> held;
      for (const auto& instr : block->instructions()) {
        PointsTo::ObjectId token = 0;
        if (instr->opcode() == ir::Opcode::kLock) {
          if (facts.lock_token(instr->operand(0), token)) held.insert(token);
          continue;
        }
        if (instr->opcode() == ir::Opcode::kUnlock) {
          if (facts.lock_token(instr->operand(0), token)) held.erase(token);
          continue;
        }
        if (!instr->is_call()) continue;
        if (!held.empty()) {
          std::vector<const ir::Function*> roots;
          if (instr->opcode() == ir::Opcode::kCall) {
            if (instr->callee() != nullptr && instr->callee()->has_body()) {
              roots.push_back(instr->callee());
            }
          } else {
            const auto it = resolved.find(instr.get());
            if (it != resolved.end()) {
              for (const ir::Function* f : it->second) {
                if (f != nullptr && f->has_body()) roots.push_back(f);
              }
            }
          }
          if (!roots.empty()) {
            std::vector<ir::Function*> mutable_roots;
            for (const ir::Function* f : roots) {
              mutable_roots.push_back(const_cast<ir::Function*>(f));
            }
            const std::unordered_set<ir::Function*> reach =
                cg.reachable_from(mutable_roots);
            // lock_sites() is already in module order, which keeps the
            // witness choice deterministic despite the unordered reach set.
            for (const LockFacts::LockSite& site : facts.lock_sites()) {
              if (!site.is_acquire) continue;
              if (reach.count(const_cast<ir::Function*>(site.function)) ==
                  0) {
                continue;
              }
              if (!facts.well_formed(site.token)) continue;
              for (const PointsTo::ObjectId h : held) {
                if (h == site.token || !facts.well_formed(h)) continue;
                InterprocLockEdge edge;
                edge.held = h;
                edge.acquired = site.token;
                edge.acquire_site = site.instr;
                edge.caller = function.get();
                edges.try_emplace({h, site.token}, edge);
              }
            }
          }
        }
        // Drop exactly the tokens the callee may release — or everything,
        // when it may release a mutex the analysis cannot identify.
        LockFacts::LockSet released;
        if (!facts.call_released_tokens(*instr, released)) {
          held.clear();
        } else {
          for (const PointsTo::ObjectId t : released) held.erase(t);
        }
      }
    }
  }
  std::vector<InterprocLockEdge> out;
  out.reserve(edges.size());
  for (const auto& [key, edge] : edges) {
    (void)key;
    out.push_back(edge);
  }
  return out;
}

}  // namespace owl::analysis
