// Static may-race pre-screen over PointsTo results (DESIGN.md §9).
//
// Classifies every abstract object as escaping (reachable from a global or
// a thread-create argument through the points-to closure) or thread-local,
// runs a flow-insensitive must-lockset pass over lock/unlock regions, and
// emits a per-instruction verdict: a plain load/store lands in no_race()
// when every object its pointer may reference is provably thread-local or
// consistently locked. The dynamic detectors consult that set to skip
// shadow-memory work (PrescreenView), which must never change the emitted
// reports — the soundness argument, in brief:
//
//  * Execution is untouched; only the observer prunes events, so a pruned
//    verdict is unsound only if the pruned event could pair with another
//    event into a reportable race.
//  * Accesses whose dynamic address the analysis cannot bound ("wild":
//    unknown pointers, empty non-literal pointers, out-of-extent offsets,
//    function values used as data pointers) could alias anything, so a
//    single wild access disables pruning for the whole module.
//  * With no wild accesses, every event lands inside a pointed-to object's
//    extent (or below the interpreter's null guard, which the detector
//    re-checks dynamically), so object disjointness is real: events on a
//    never-escaping object all come from its allocating thread and cannot
//    race; events on a consistently-locked object are pairwise ordered by
//    the common mutex's release/acquire edges.
//  * "Consistently locked" additionally requires lock discipline: a mutex
//    token is well-formed only when every lock/unlock of it names the
//    global directly and every unlock provably holds it (else a foreign
//    unlock could break the happens-before chain mid-critical-section);
//    objects with any atomic/strcpy/memcopy accessor are never eligible.
//
// --prescreen=audit keeps all events flowing but cross-checks every would-
// be-pruned access against the detector's verdict and counts violations.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/lock_facts.hpp"
#include "analysis/points_to.hpp"
#include "ir/callgraph.hpp"

namespace owl::analysis {

class Prescreen {
 public:
  /// Standalone construction: computes its own LockFacts internally.
  Prescreen(const ir::Module& module, const PointsTo& pt,
            const ir::IndirectCallMap& resolved);
  /// Shared-fact construction (ModuleStatic): `facts` must outlive the
  /// prescreen and be computed over the same module/points-to results.
  Prescreen(const ir::Module& module, const PointsTo& pt,
            const ir::IndirectCallMap& resolved, const LockFacts& facts);

  /// Plain loads/stores that provably cannot participate in a data race.
  /// Empty whenever pruning_enabled() is false.
  const std::unordered_set<const ir::Instruction*>& no_race() const noexcept {
    return no_race_;
  }

  /// False when a wild access or unbounded store forced the analysis to
  /// give up module-wide (disable_reason() says why).
  bool pruning_enabled() const noexcept { return disable_reason_.empty(); }
  const std::string& disable_reason() const noexcept {
    return disable_reason_;
  }

  // --- classification introspection (tests, EXPERIMENTS.md) ---
  std::size_t considered_accesses() const noexcept { return considered_; }
  std::size_t wild_accesses() const noexcept { return wild_accesses_; }
  bool object_escapes(PointsTo::ObjectId o) const {
    return escaped_.at(o) != 0;
  }
  bool object_consistently_locked(PointsTo::ObjectId o) const {
    return consistently_locked_.at(o) != 0;
  }

  /// The lockset facts this prescreen consumed (shared or internally owned).
  const LockFacts& lock_facts() const noexcept { return *facts_; }

 private:
  enum class PtrClass { kSubGuard, kTame, kWild };

  PtrClass classify_pointer(const ir::Value* p) const;
  void scan_accesses();
  void compute_escape();
  void compute_lock_discipline_and_common();
  void compute_verdicts();
  void disable(std::string reason);

  const ir::Module& module_;
  const PointsTo& pt_;
  std::unique_ptr<const LockFacts> owned_facts_;  // standalone ctor only
  const LockFacts* facts_;

  std::vector<char> escaped_;
  std::vector<char> lockable_;  // no atomic/strcpy/memcopy accessor so far
  std::vector<char> consistently_locked_;
  // Intersection of well-formed held tokens across an object's accessors;
  // absent entry = no accessor seen yet (⊤).
  std::unordered_map<PointsTo::ObjectId, std::vector<PointsTo::ObjectId>>
      common_locks_;
  std::unordered_set<const ir::Instruction*> no_race_;
  std::string disable_reason_;
  std::size_t considered_ = 0;
  std::size_t wild_accesses_ = 0;
};

}  // namespace owl::analysis
