#include "analysis/static_info.hpp"

#include "ir/instruction.hpp"

namespace owl::analysis {

namespace {

ir::IndirectCallMap build_indirect_map(const ir::Module& module,
                                       const PointsTo& pt) {
  ir::IndirectCallMap map;
  for (const auto& f : module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != ir::Opcode::kCallPtr) continue;
        auto targets = pt.resolve_indirect(instr.get());
        if (!targets.empty()) {
          map.emplace(instr.get(), std::move(targets));
        }
      }
    }
  }
  return map;
}

}  // namespace

ModuleStatic::ModuleStatic(const ir::Module& module)
    : points_to(module),
      resolved_calls(build_indirect_map(module, points_to)),
      lock_facts(module, points_to, resolved_calls),
      prescreen(module, points_to, resolved_calls, lock_facts) {
  for (const auto& f : module.functions()) {
    for (const auto& bb : f->blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (instr->opcode() != ir::Opcode::kCallPtr) continue;
        ++indirect_call_sites;
        if (points_to.indirect_unresolved(instr.get())) {
          ++unresolved_indirect_sites;
        }
        auto it = resolved_calls.find(instr.get());
        if (it != resolved_calls.end()) {
          indirect_resolved_edges += it->second.size();
        }
      }
    }
  }
}

}  // namespace owl::analysis
