#include "repair/report.hpp"

namespace owl::repair {

std::string_view strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kLockReuse: return "lock_reuse";
    case Strategy::kRelocate: return "relocate";
    case Strategy::kLockInsert: return "lock_insert";
  }
  return "?";
}

}  // namespace owl::repair
