// RepairPlanner — candidate synthesis for confirmed races (DESIGN.md §13).
//
// Given the verified race reports of one pipeline target, the planner
// proposes whole-module repair candidates in preference order:
//
//  1. lock_reuse  — guard every racy access range with a mutex that already
//                   protects the racy variable on some other path (found
//                   via analysis::LockFacts: a well-formed token in the
//                   must-held set of a non-racy access to the same object);
//  2. relocate    — when a racy access sits in the spawning block between
//                   thread_create and thread_join, move it past the last
//                   join: the paired access can no longer happen in
//                   parallel with it;
//  3. lock_insert — guard every racy access range with one fresh mutex
//                   ("__owl_fix"). A single mutex for all ranges by design:
//                   two fresh locks could introduce a lock-order cycle, one
//                   cannot.
//
// The planner is purely static and deliberately optimistic — each candidate
// is only a hypothesis until the engine's three verification gates pass
// (race-freedom, checker differential, output equivalence). All racy sites
// of all confirmed reports are repaired jointly: one candidate patches the
// whole module, yielding one `<example>_fixed.mir` per target.
#pragma once

#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "ir/transform.hpp"
#include "race/report.hpp"
#include "repair/report.hpp"

namespace owl::repair {

/// One critical-section guard: [first.index, last_index] of first's block.
struct GuardSpan {
  ir::InstrCoord first;
  std::size_t last_index = 0;
};

/// One relocation: detach `from`, re-insert after `after`.
struct MoveEdit {
  ir::InstrCoord from;
  ir::InstrCoord after;
};

/// A whole-module patch hypothesis. `lock` names an existing global for
/// kLockReuse and the preferred fresh-mutex name for kLockInsert.
struct RepairCandidate {
  Strategy strategy = Strategy::kLockInsert;
  std::string lock;
  std::vector<GuardSpan> guards;
  std::vector<MoveEdit> moves;

  /// "lock_insert(@__owl_fix)" — log/report label.
  std::string describe() const;
};

class RepairPlanner {
 public:
  RepairPlanner(const ir::Module& module,
                const analysis::ModuleStatic& statics)
      : module_(module), statics_(statics) {}

  /// Candidates in preference order; empty when no confirmed report carries
  /// usable instruction sites.
  std::vector<RepairCandidate> plan(
      const std::vector<race::RaceReport>& confirmed) const;

 private:
  const ir::Module& module_;
  const analysis::ModuleStatic& statics_;
};

}  // namespace owl::repair
