#include "repair/engine.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

#include "checkers/checker.hpp"
#include "interp/machine.hpp"
#include "ir/printer.hpp"
#include "ir/transform.hpp"
#include "repair/planner.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace owl::repair {
namespace {

/// What gate C compares: the kPrint stream plus how the run ended. Final
/// memory is deliberately NOT compared — a correct fix may well change it
/// (that racy lost update was the bug), but everything the workload
/// *observably emitted* must be preserved.
struct OutputSignature {
  std::vector<interp::Word> prints;
  interp::StopReason reason = interp::StopReason::kAllFinished;
};

OutputSignature run_round_robin(const race::MachineFactory& factory) {
  std::unique_ptr<interp::Machine> machine = factory();
  interp::RoundRobinScheduler scheduler;
  OutputSignature signature;
  signature.reason = machine->run(scheduler).reason;
  signature.prints = machine->prints();
  return signature;
}

/// Clones the original and applies one candidate. `lock_name` comes back
/// as the mutex actually used (lock_insert may rename on collision).
/// Returns nullptr when any edit fails to apply.
std::shared_ptr<ir::Module> apply_candidate(const ir::Module& original,
                                            const RepairCandidate& candidate,
                                            std::string& lock_name) {
  std::shared_ptr<ir::Module> patched = ir::clone_module(original);
  if (patched == nullptr) return nullptr;
  if (!candidate.guards.empty()) {
    lock_name = candidate.lock;
    if (candidate.strategy == Strategy::kLockInsert) {
      lock_name = ir::add_mutex_global(*patched, candidate.lock)->name();
    }
    // Bottom-up within each block: narrowing can emit several spans per
    // block, and guarding a later span first keeps the earlier spans'
    // indices valid (insertions above an index never shift it).
    std::vector<GuardSpan> guards = candidate.guards;
    std::sort(guards.begin(), guards.end(),
              [](const GuardSpan& a, const GuardSpan& b) {
                if (a.first.function != b.first.function) {
                  return a.first.function < b.first.function;
                }
                if (a.first.block != b.first.block) {
                  return a.first.block < b.first.block;
                }
                return a.first.index > b.first.index;
              });
    for (const GuardSpan& span : guards) {
      if (!ir::guard_range(*patched, span.first, span.last_index,
                           lock_name)) {
        return nullptr;
      }
    }
  }
  // Highest index first, so an earlier move cannot shift a later move's
  // source coordinate within the same block.
  std::vector<MoveEdit> moves = candidate.moves;
  std::sort(moves.begin(), moves.end(),
            [](const MoveEdit& a, const MoveEdit& b) {
              if (a.from.function != b.from.function) {
                return a.from.function < b.from.function;
              }
              if (a.from.block != b.from.block) {
                return a.from.block < b.from.block;
              }
              return a.from.index > b.from.index;
            });
  for (const MoveEdit& move : moves) {
    if (!ir::move_after(*patched, move.from, move.after)) return nullptr;
  }
  return patched;
}

/// Gate C. The original signature is computed once by the caller.
bool gate_output_equal(const OutputSignature& original,
                       const race::MachineFactory& patched_factory) {
  const OutputSignature patched = run_round_robin(patched_factory);
  if (patched.reason != interp::StopReason::kAllFinished) return false;
  if (original.reason != interp::StopReason::kAllFinished) return false;
  if (patched.prints != original.prints) return false;
  // Deadlock smoke beyond the deterministic schedule: a guard that can
  // deadlock usually does so within a few random preemption patterns.
  for (const std::uint64_t seed : {2ull, 3ull, 5ull}) {
    std::unique_ptr<interp::Machine> machine = patched_factory();
    interp::RandomScheduler scheduler(seed);
    if (machine->run(scheduler).reason == interp::StopReason::kDeadlock) {
      return false;
    }
  }
  return true;
}

/// Gate B. `baseline` holds the sort_keys of the original module's
/// findings under the full checker suite.
bool gate_no_new_findings(const std::set<std::string>& baseline,
                          const ir::Module& patched,
                          const race::MachineFactory& patched_factory) {
  const analysis::ModuleStatic patched_static(patched);
  const checkers::AnalysisContext ctx(patched, patched_static,
                                      patched_factory);
  checkers::CheckerOptions all;
  all.deadlock = all.atomicity = all.lock_mismatch = all.condvar = true;
  for (const checkers::BugReport& finding : checkers::run_checkers(all, ctx)) {
    if (baseline.count(finding.sort_key()) == 0) return false;
  }
  return true;
}

/// Gate A. Runs the Fig. 3 stages on the patched module with the session's
/// detector configuration, in both predict modes; zero races must remain
/// and the verification run itself must not degrade (a degraded run proves
/// nothing).
bool gate_race_free(const core::PipelineTarget& target,
                    const core::PipelineOptions& session,
                    const std::shared_ptr<ir::Module>& patched,
                    const race::MachineFactory& patched_factory) {
  for (const race::PredictMode mode :
       {race::PredictMode::kOff, race::PredictMode::kOn}) {
    core::PipelineOptions options;
    options.enable_adhoc_annotation = session.enable_adhoc_annotation;
    options.detector_impl = session.detector_impl;
    options.predict = mode;
    options.enable_race_verifier = true;
    options.enable_vuln_verifier = false;
    options.race_verifier_attempts = session.race_verifier_attempts;
    options.retry = session.retry;
    // Everything else stays at defaults on purpose: no prescreen, no
    // checkers, no repair (recursion guard), no fault injector, no
    // manifest, unlimited budgets (a wall-clock budget would make the
    // verdict time-dependent), jobs=1.
    core::PipelineTarget verify;
    verify.name = target.name + "#repair-verify";
    verify.module = patched.get();
    verify.factory = patched_factory;
    verify.exploit_factory = patched_factory;
    verify.detector = target.detector;
    verify.detection_schedules = target.detection_schedules;
    verify.seed = target.seed;
    const core::PipelineResult result = core::Pipeline(options).run(verify);
    if (result.counts.remaining != 0 || result.degraded()) return false;
  }
  return true;
}

}  // namespace

std::string fixed_module_name(const std::string& target_name) {
  std::string stem = target_name;
  if (const std::size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem.erase(0, slash + 1);
  }
  if (ends_with(stem, ".mir")) stem.erase(stem.size() - 4);
  return stem + "_fixed.mir";
}

RepairReport attempt_repair(const core::PipelineTarget& target,
                            const core::PipelineOptions& session,
                            const analysis::ModuleStatic& statics,
                            const std::vector<race::RaceReport>& confirmed) {
  RepairReport report;
  for (const race::RaceReport& race : confirmed) {
    RepairedRace repaired;
    repaired.object = race.object_name;
    repaired.first_loc = race.first.instr != nullptr
                             ? race.first.instr->loc().to_string()
                             : "<?>";
    repaired.second_loc = race.second.instr != nullptr
                              ? race.second.instr->loc().to_string()
                              : "<?>";
    report.races.push_back(std::move(repaired));
  }
  if (confirmed.empty()) {
    report.status = "no_races";
    return report;
  }
  if (!target.factory_for_module) {
    throw std::runtime_error(
        "repair needs a module-factory hook (PipelineTarget::"
        "factory_for_module unset)");
  }

  const OutputSignature original_signature = run_round_robin(target.factory);
  std::set<std::string> baseline;
  {
    checkers::CheckerOptions all;
    all.deadlock = all.atomicity = all.lock_mismatch = all.condvar = true;
    const checkers::AnalysisContext ctx(*target.module, statics,
                                        target.factory);
    for (const checkers::BugReport& finding :
         checkers::run_checkers(all, ctx)) {
      baseline.insert(finding.sort_key());
    }
  }

  const RepairPlanner planner(*target.module, statics);
  for (const RepairCandidate& candidate : planner.plan(confirmed)) {
    ++report.candidates_tried;
    CandidateOutcome outcome;
    outcome.strategy = std::string(strategy_name(candidate.strategy));
    outcome.lock = candidate.lock;
    std::string lock_name;
    const std::shared_ptr<ir::Module> patched =
        apply_candidate(*target.module, candidate, lock_name);
    if (patched == nullptr) {
      outcome.killed_by = "apply_failed";
      report.candidates.push_back(std::move(outcome));
      continue;
    }
    outcome.lock = lock_name;
    const race::MachineFactory patched_factory =
        target.factory_for_module(patched);
    // Cheapest gate first; all three must pass.
    if (!gate_output_equal(original_signature, patched_factory)) {
      outcome.killed_by = "output_equal";
      report.candidates.push_back(std::move(outcome));
      continue;
    }
    if (!gate_no_new_findings(baseline, *patched, patched_factory)) {
      outcome.killed_by = "no_new_findings";
      report.candidates.push_back(std::move(outcome));
      continue;
    }
    if (!gate_race_free(target, session, patched, patched_factory)) {
      outcome.killed_by = "race_free";
      report.candidates.push_back(std::move(outcome));
      continue;
    }
    report.candidates.push_back(std::move(outcome));
    report.status = "repaired";
    report.strategy = std::string(strategy_name(candidate.strategy));
    report.lock = lock_name;
    report.fixed_module = fixed_module_name(target.name);
    report.gate_race_free = true;
    report.gate_no_new_findings = true;
    report.gate_output_equal = true;
    report.patched_text = ir::print_module(*patched);
    OWL_LOG(kInfo) << target.name << ": repaired via " << candidate.describe()
                   << " after " << report.candidates_tried << " candidate(s)";
    return report;
  }
  report.status = "unrepaired";
  return report;
}

std::string render_repair_json(const RepairReport& report,
                               const std::string& target_name) {
  std::string out = "{\n";
  out += " \"schema\":\"owl-repair-v1\",\n";
  out += " \"target\":" + json_quote(target_name) + ",\n";
  out += " \"status\":" + json_quote(report.status) + ",\n";
  out += " \"strategy\":" + json_quote(report.strategy) + ",\n";
  out += " \"lock\":" + json_quote(report.lock) + ",\n";
  out += str_format(" \"candidates_tried\":%u,\n", report.candidates_tried);
  out += " \"fixed_module\":" + json_quote(report.fixed_module) + ",\n";
  out += str_format(
      " \"gates\":{\"race_free\":%s,\"no_new_findings\":%s,"
      "\"output_equal\":%s},\n",
      report.gate_race_free ? "true" : "false",
      report.gate_no_new_findings ? "true" : "false",
      report.gate_output_equal ? "true" : "false");
  out += " \"candidates\":[";
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const CandidateOutcome& candidate = report.candidates[i];
    if (i != 0) out += ",";
    out += "\n  {\"strategy\":" + json_quote(candidate.strategy) +
           ",\"lock\":" + json_quote(candidate.lock) +
           ",\"killed_by\":" + json_quote(candidate.killed_by) + "}";
  }
  out += report.candidates.empty() ? "],\n" : "\n ],\n";
  out += " \"races\":[";
  for (std::size_t i = 0; i < report.races.size(); ++i) {
    const RepairedRace& race = report.races[i];
    if (i != 0) out += ",";
    out += "\n  {\"object\":" + json_quote(race.object) +
           ",\"first\":" + json_quote(race.first_loc) +
           ",\"second\":" + json_quote(race.second_loc) + "}";
  }
  out += report.races.empty() ? "]\n" : "\n ]\n";
  out += "}\n";
  return out;
}

}  // namespace owl::repair
