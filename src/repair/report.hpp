// Structured outcome of the automated race-repair stage (DESIGN.md §13).
//
// Deliberately free of core/ includes: core/pipeline.hpp embeds these types
// in PipelineOptions / PipelineResult, while the repair engine itself
// depends on the full pipeline — keeping this header leaf-level breaks the
// cycle. Everything here is plain data; rendering lives in core/render
// (human text, shared with owl_served) and repair/engine (JSON file form).
#pragma once

#include <string>
#include <vector>

namespace owl::repair {

/// The candidate-synthesis strategies, in the planner's preference order.
enum class Strategy {
  kLockReuse,   ///< guard with a lock already protecting the object elsewhere
  kRelocate,    ///< move the main-thread access past the joins (MHP permits)
  kLockInsert,  ///< guard with a fresh module-level mutex
};

std::string_view strategy_name(Strategy strategy) noexcept;

struct RepairOptions {
  /// Master switch. Off (the default) leaves every output byte-identical
  /// to a build without the repair stage.
  bool enabled = false;
  /// Directory for `<stem>_fixed.mir` + `<stem>_repair.json` (owl_cli
  /// --repair DIR). Empty = verify-only: the stage runs and reports, but
  /// nothing touches the filesystem (the serve path).
  std::string out_dir;
};

/// One repaired race, identified portably across modules (instruction ids
/// differ between the original and the patched clone; source locations and
/// the object name do not).
struct RepairedRace {
  std::string object;      ///< racy variable ("balance", ...)
  std::string first_loc;   ///< "file:line" of the first access
  std::string second_loc;  ///< "file:line" of the second access
};

/// Post-mortem for one planned candidate: which verification gate (or the
/// patch application itself) eliminated it. `killed_by` is one of
/// "apply_failed", "output_equal", "no_new_findings", "race_free", or ""
/// for the winning candidate.
struct CandidateOutcome {
  std::string strategy;
  std::string lock;  ///< guard mutex name ("" for relocate)
  std::string killed_by;
};

struct RepairReport {
  /// "repaired" | "unrepaired" | "no_races" ("" when the stage never ran).
  std::string status;
  std::string strategy;  ///< winning strategy name ("" unless repaired)
  std::string lock;      ///< guard mutex name ("" for relocate)
  unsigned candidates_tried = 0;
  /// Basename of the emitted module ("<stem>_fixed.mir"); recorded even
  /// when out_dir is empty so CLI and serve render identically.
  std::string fixed_module;
  /// Verification-gate verdicts for the winning candidate (all false when
  /// nothing passed).
  bool gate_race_free = false;     ///< zero races, incl. under --predict on
  bool gate_no_new_findings = false;  ///< checker-suite differential clean
  bool gate_output_equal = false;     ///< observable output byte-identical
  std::vector<RepairedRace> races;    ///< the confirmed races being repaired
  /// One entry per candidate in planner order; the winner (if any) is the
  /// last entry and carries an empty killed_by.
  std::vector<CandidateOutcome> candidates;
  /// Canonical text of the patched module ("" unless repaired). The CLI
  /// writes it to out_dir; serialize/render never include it wholesale.
  std::string patched_text;
};

}  // namespace owl::repair
