#include "repair/planner.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace owl::repair {
namespace {

using analysis::LockFacts;
using analysis::PointsTo;

/// The racy instruction sites of the confirmed reports, deduplicated.
std::set<const ir::Instruction*> racy_sites(
    const std::vector<race::RaceReport>& confirmed) {
  std::set<const ir::Instruction*> sites;
  for (const race::RaceReport& report : confirmed) {
    if (report.first.instr != nullptr) sites.insert(report.first.instr);
    if (report.second.instr != nullptr) sites.insert(report.second.instr);
  }
  return sites;
}

/// Racy sites folded into per-(function, block) guard spans, emitted in
/// module declaration order so candidates are deterministic.
std::vector<GuardSpan> guard_spans(
    const ir::Module& module, const std::set<const ir::Instruction*>& sites) {
  std::map<std::pair<std::string, std::string>,
           std::pair<std::size_t, std::size_t>>
      ranges;  // (function, block) -> [min, max] index
  for (const ir::Instruction* site : sites) {
    const ir::InstrCoord coord = ir::coord_of(*site);
    auto [it, inserted] = ranges.try_emplace(
        std::make_pair(coord.function, coord.block),
        std::make_pair(coord.index, coord.index));
    if (!inserted) {
      it->second.first = std::min(it->second.first, coord.index);
      it->second.second = std::max(it->second.second, coord.index);
    }
  }
  std::vector<GuardSpan> spans;
  for (const auto& function : module.functions()) {
    for (const auto& block : function->blocks()) {
      const auto it =
          ranges.find(std::make_pair(function->name(), block->label()));
      if (it == ranges.end()) continue;
      GuardSpan span;
      span.first = {function->name(), block->label(), it->second.first};
      span.last_index = it->second.second;
      spans.push_back(std::move(span));
    }
  }
  return spans;
}

/// True when `instr` directly accesses the global named `object`.
bool accesses_global(const ir::Instruction& instr, const std::string& object) {
  if (!instr.is_memory_access()) return false;
  for (const ir::Value* operand : instr.operands()) {
    if (operand->kind() == ir::ValueKind::kGlobalVariable &&
        operand->name() == object) {
      return true;
    }
  }
  return false;
}

/// Well-formed tokens protecting some non-racy access to `object` — the
/// "a lock already protects this variable on other paths" evidence.
std::set<PointsTo::ObjectId> protecting_tokens(
    const ir::Module& module, const LockFacts& facts,
    const std::set<const ir::Instruction*>& sites, const std::string& object) {
  std::set<PointsTo::ObjectId> tokens;
  for (const auto& function : module.functions()) {
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        if (sites.count(instr.get()) != 0) continue;
        if (!accesses_global(*instr, object)) continue;
        for (const PointsTo::ObjectId token :
             facts.must_held_before(instr.get())) {
          if (facts.well_formed(token)) tokens.insert(token);
        }
      }
    }
  }
  return tokens;
}

/// Name of the global behind a points-to token ("" when not a global).
std::string token_global_name(const PointsTo& pt, PointsTo::ObjectId token) {
  if (token >= pt.objects().size()) return "";
  const analysis::AbstractObject& object = pt.objects()[token];
  if (object.kind != analysis::ObjectKind::kGlobal || object.site == nullptr) {
    return "";
  }
  return object.site->name();
}

/// A store movable without disturbing SSA dependencies: both operands are
/// always-available values (constants / globals), and stores produce no
/// result anything downstream could consume.
bool is_movable_store(const ir::Instruction& instr) {
  if (instr.opcode() != ir::Opcode::kStore) return false;
  for (const ir::Value* operand : instr.operands()) {
    if (operand->kind() != ir::ValueKind::kConstant &&
        operand->kind() != ir::ValueKind::kGlobalVariable) {
      return false;
    }
  }
  return true;
}

/// Relocation window test: `site` sits in a block after some thread_create
/// and before some thread_join; returns the coordinate of the *last* join
/// in that block (the move anchor) via `anchor`.
bool in_spawn_window(const ir::Instruction& site, ir::InstrCoord& anchor) {
  const ir::BasicBlock* block = site.parent();
  if (block == nullptr) return false;
  const std::size_t site_index = block->index_of(&site);
  bool create_before = false;
  std::size_t last_join = 0;
  bool join_after = false;
  for (std::size_t i = 0; i < block->size(); ++i) {
    const ir::Instruction& instr = *block->instructions()[i];
    if (instr.opcode() == ir::Opcode::kThreadCreate && i < site_index) {
      create_before = true;
    }
    if (instr.opcode() == ir::Opcode::kThreadJoin && i > site_index) {
      join_after = true;
      last_join = i;
    }
  }
  if (!create_before || !join_after) return false;
  anchor = {block->parent()->name(), block->label(), last_join};
  return true;
}

}  // namespace

std::string RepairCandidate::describe() const {
  std::string out(strategy_name(strategy));
  if (!lock.empty()) out += "(@" + lock + ")";
  return out;
}

std::vector<RepairCandidate> RepairPlanner::plan(
    const std::vector<race::RaceReport>& confirmed) const {
  std::vector<RepairCandidate> candidates;
  const std::set<const ir::Instruction*> sites = racy_sites(confirmed);
  if (sites.empty()) return candidates;

  // Guard every access to the racy objects, not just the reported pair:
  // the confirmed set is schedule-dependent (a different seed confirms a
  // different subset of the same underlying races), and a lock that covers
  // only the witnessed sites leaves the sibling accesses racing — the
  // race-freedom gate would reject the patch on re-verification.
  std::set<std::string> objects;
  for (const race::RaceReport& report : confirmed) {
    if (!report.object_name.empty()) objects.insert(report.object_name);
  }
  std::set<const ir::Instruction*> guard_sites = sites;
  for (const auto& function : module_.functions()) {
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        for (const std::string& object : objects) {
          if (accesses_global(*instr, object)) {
            guard_sites.insert(instr.get());
            break;
          }
        }
      }
    }
  }
  const std::vector<GuardSpan> spans = guard_spans(module_, guard_sites);

  // --- 1. lock_reuse: one existing lock must cover every racy object ---
  {
    std::set<PointsTo::ObjectId> shared;
    bool first_object = true;
    for (const std::string& object : objects) {
      const std::set<PointsTo::ObjectId> tokens = protecting_tokens(
          module_, statics_.lock_facts, sites, object);
      if (first_object) {
        shared = tokens;
        first_object = false;
      } else {
        std::set<PointsTo::ObjectId> kept;
        std::set_intersection(shared.begin(), shared.end(), tokens.begin(),
                              tokens.end(),
                              std::inserter(kept, kept.begin()));
        shared = std::move(kept);
      }
    }
    if (!objects.empty() && !shared.empty()) {
      const PointsTo::ObjectId token = *shared.begin();
      const std::string name = token_global_name(statics_.points_to, token);
      // Guard only the sites that do not already hold the reused lock —
      // wrapping an access that acquired it on entry would self-deadlock,
      // and the already-guarded sites are precisely the evidence the lock
      // works.
      std::set<const ir::Instruction*> unguarded;
      for (const ir::Instruction* site : guard_sites) {
        bool held = false;
        for (const PointsTo::ObjectId h :
             statics_.lock_facts.must_held_before(site)) {
          if (h == token) {
            held = true;
            break;
          }
        }
        if (!held) unguarded.insert(site);
      }
      if (!name.empty() && !unguarded.empty()) {
        RepairCandidate candidate;
        candidate.strategy = Strategy::kLockReuse;
        candidate.lock = name;
        candidate.guards = guard_spans(module_, unguarded);
        candidates.push_back(std::move(candidate));
      }
    }
  }

  // --- 2. relocate: every report must have a movable spawn-window store ---
  {
    RepairCandidate candidate;
    candidate.strategy = Strategy::kRelocate;
    std::set<const ir::Instruction*> moved;
    bool all_movable = !confirmed.empty();
    for (const race::RaceReport& report : confirmed) {
      const ir::Instruction* movable = nullptr;
      ir::InstrCoord anchor;
      for (const ir::Instruction* side : {report.first.instr,
                                          report.second.instr}) {
        if (side != nullptr && is_movable_store(*side) &&
            in_spawn_window(*side, anchor)) {
          movable = side;
          break;
        }
      }
      if (movable == nullptr) {
        all_movable = false;
        break;
      }
      if (moved.insert(movable).second) {
        candidate.moves.push_back({ir::coord_of(*movable), anchor});
      }
    }
    if (all_movable && !candidate.moves.empty()) {
      candidates.push_back(std::move(candidate));
    }
  }

  // --- 3. lock_insert: always plannable — one fresh mutex for all spans ---
  {
    RepairCandidate candidate;
    candidate.strategy = Strategy::kLockInsert;
    candidate.lock = "__owl_fix";
    candidate.guards = spans;
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace owl::repair
