#include "repair/planner.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "analysis/value_flow.hpp"
#include "ir/cfg.hpp"
#include "ir/dominators.hpp"

namespace owl::repair {
namespace {

using analysis::LockFacts;
using analysis::PointsTo;
using analysis::ValueFlowGraph;

/// The racy instruction sites of the confirmed reports, deduplicated.
std::set<const ir::Instruction*> racy_sites(
    const std::vector<race::RaceReport>& confirmed) {
  std::set<const ir::Instruction*> sites;
  for (const race::RaceReport& report : confirmed) {
    if (report.first.instr != nullptr) sites.insert(report.first.instr);
    if (report.second.instr != nullptr) sites.insert(report.second.instr);
  }
  return sites;
}

/// Points-to footprint of one guard site: every abstract object any operand
/// may reference; `unknown` set when the analysis cannot bound an operand.
struct SiteObjects {
  std::set<PointsTo::ObjectId> ids;
  bool unknown = false;
};

SiteObjects site_objects(const PointsTo& pt, const ir::Instruction& instr) {
  SiteObjects out;
  for (const ir::Value* operand : instr.operands()) {
    if (pt.is_unknown(operand)) out.unknown = true;
    for (const PointsTo::ObjectId id : pt.points_to(operand)) {
      out.ids.insert(id);
    }
  }
  return out;
}

bool objects_overlap(const SiteObjects& a, const SiteObjects& b) {
  if (a.unknown || b.unknown) return true;
  for (const PointsTo::ObjectId id : a.ids) {
    if (b.ids.count(id) != 0) return true;
  }
  return false;
}

/// Thread-invisible instructions: pure register/pointer arithmetic that
/// cannot interact with any other thread no matter the interleaving.
/// Moving a critical-section boundary across one is provably behavior-
/// preserving; everything else (memory, sync, calls, I/O) keeps clusters
/// joined — the conservative direction is the pre-narrowing whole-span.
bool thread_invisible(const ir::Instruction& instr) {
  switch (instr.opcode()) {
    case ir::Opcode::kAdd:
    case ir::Opcode::kSub:
    case ir::Opcode::kMul:
    case ir::Opcode::kUDiv:
    case ir::Opcode::kSDiv:
    case ir::Opcode::kAnd:
    case ir::Opcode::kOr:
    case ir::Opcode::kXor:
    case ir::Opcode::kShl:
    case ir::Opcode::kLShr:
    case ir::Opcode::kICmp:
    case ir::Opcode::kGep:
      return true;
    default:
      return false;
  }
}

/// Racy sites folded into per-(function, block) guard spans, emitted in
/// module declaration order — then narrowed (DESIGN.md §14): the historic
/// one-span-per-block [min, max] range over-guards when a block carries
/// independent site clusters separated by thread-invisible code. Two
/// consecutive sites stay in one cluster unless all three independence
/// proofs hold: disjoint points-to footprints, no value-flow register edge
/// from the cluster into the next site, and a separating gap made solely
/// of thread-invisible instructions. Each cluster becomes the minimal
/// dominating range [first site, last site] — within a block the first
/// instruction dominates the rest, and the dominator tree vouches the
/// block itself is entry-reachable (unreachable blocks keep the merged
/// whole-range span: no dominating lock placement exists for them).
std::vector<GuardSpan> guard_spans(
    const ir::Module& module, const analysis::ModuleStatic& statics,
    const ValueFlowGraph& vfg,
    const std::set<const ir::Instruction*>& sites) {
  std::vector<GuardSpan> spans;
  for (const auto& function : module.functions()) {
    // Lazily built per function: most functions carry no guard sites.
    std::optional<ir::Cfg> cfg;
    std::optional<ir::DominatorTree> domtree;
    for (const auto& block : function->blocks()) {
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < block->size(); ++i) {
        if (sites.count(block->instructions()[i].get()) != 0) {
          indices.push_back(i);
        }
      }
      if (indices.empty()) continue;
      if (!cfg.has_value()) {
        cfg.emplace(*function);
        domtree.emplace(*cfg);
      }

      std::vector<std::pair<std::size_t, std::size_t>> clusters;
      if (function->entry() == nullptr ||
          !domtree->dominates(function->entry(), block.get())) {
        clusters.emplace_back(indices.front(), indices.back());
      } else {
        std::vector<const ir::Instruction*> members;
        SiteObjects cluster_objects;
        std::size_t lo = indices.front();
        std::size_t hi = indices.front();
        members.push_back(block->instructions()[lo].get());
        cluster_objects = site_objects(statics.points_to, *members.back());
        for (std::size_t k = 1; k < indices.size(); ++k) {
          const std::size_t at = indices[k];
          const ir::Instruction* next = block->instructions()[at].get();
          const SiteObjects next_objects =
              site_objects(statics.points_to, *next);
          bool join = objects_overlap(cluster_objects, next_objects);
          if (!join) {
            for (const ir::Instruction* member : members) {
              const std::vector<const ir::Instruction*>& uses =
                  vfg.uses(member);
              if (std::find(uses.begin(), uses.end(), next) != uses.end()) {
                join = true;
                break;
              }
            }
          }
          if (!join) {
            // Adjacent sites stay joined: splitting them inserts an
            // unlock;lock seam with zero code between — pure overhead.
            join = at == hi + 1;
            for (std::size_t i = hi + 1; i < at; ++i) {
              if (!thread_invisible(*block->instructions()[i])) {
                join = true;
                break;
              }
            }
          }
          if (join) {
            hi = at;
            members.push_back(next);
            cluster_objects.unknown |= next_objects.unknown;
            cluster_objects.ids.insert(next_objects.ids.begin(),
                                       next_objects.ids.end());
          } else {
            clusters.emplace_back(lo, hi);
            members.assign(1, next);
            cluster_objects = next_objects;
            lo = at;
            hi = at;
          }
        }
        clusters.emplace_back(lo, hi);
      }

      for (const auto& [lo, hi] : clusters) {
        GuardSpan span;
        span.first = {function->name(), block->label(), lo};
        span.last_index = hi;
        spans.push_back(std::move(span));
      }
    }
  }
  return spans;
}

/// True when `instr` directly accesses the global named `object`.
bool accesses_global(const ir::Instruction& instr, const std::string& object) {
  if (!instr.is_memory_access()) return false;
  for (const ir::Value* operand : instr.operands()) {
    if (operand->kind() == ir::ValueKind::kGlobalVariable &&
        operand->name() == object) {
      return true;
    }
  }
  return false;
}

/// Well-formed tokens protecting some non-racy access to `object` — the
/// "a lock already protects this variable on other paths" evidence.
std::set<PointsTo::ObjectId> protecting_tokens(
    const ir::Module& module, const LockFacts& facts,
    const std::set<const ir::Instruction*>& sites, const std::string& object) {
  std::set<PointsTo::ObjectId> tokens;
  for (const auto& function : module.functions()) {
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        if (sites.count(instr.get()) != 0) continue;
        if (!accesses_global(*instr, object)) continue;
        for (const PointsTo::ObjectId token :
             facts.must_held_before(instr.get())) {
          if (facts.well_formed(token)) tokens.insert(token);
        }
      }
    }
  }
  return tokens;
}

/// Name of the global behind a points-to token ("" when not a global).
std::string token_global_name(const PointsTo& pt, PointsTo::ObjectId token) {
  if (token >= pt.objects().size()) return "";
  const analysis::AbstractObject& object = pt.objects()[token];
  if (object.kind != analysis::ObjectKind::kGlobal || object.site == nullptr) {
    return "";
  }
  return object.site->name();
}

/// A store movable without disturbing SSA dependencies: both operands are
/// always-available values (constants / globals), and stores produce no
/// result anything downstream could consume.
bool is_movable_store(const ir::Instruction& instr) {
  if (instr.opcode() != ir::Opcode::kStore) return false;
  for (const ir::Value* operand : instr.operands()) {
    if (operand->kind() != ir::ValueKind::kConstant &&
        operand->kind() != ir::ValueKind::kGlobalVariable) {
      return false;
    }
  }
  return true;
}

/// Relocation window test: `site` sits in a block after some thread_create
/// and before some thread_join; returns the coordinate of the *last* join
/// in that block (the move anchor) via `anchor`.
bool in_spawn_window(const ir::Instruction& site, ir::InstrCoord& anchor) {
  const ir::BasicBlock* block = site.parent();
  if (block == nullptr) return false;
  const std::size_t site_index = block->index_of(&site);
  bool create_before = false;
  std::size_t last_join = 0;
  bool join_after = false;
  for (std::size_t i = 0; i < block->size(); ++i) {
    const ir::Instruction& instr = *block->instructions()[i];
    if (instr.opcode() == ir::Opcode::kThreadCreate && i < site_index) {
      create_before = true;
    }
    if (instr.opcode() == ir::Opcode::kThreadJoin && i > site_index) {
      join_after = true;
      last_join = i;
    }
  }
  if (!create_before || !join_after) return false;
  anchor = {block->parent()->name(), block->label(), last_join};
  return true;
}

}  // namespace

std::string RepairCandidate::describe() const {
  std::string out(strategy_name(strategy));
  if (!lock.empty()) out += "(@" + lock + ")";
  return out;
}

std::vector<RepairCandidate> RepairPlanner::plan(
    const std::vector<race::RaceReport>& confirmed) const {
  std::vector<RepairCandidate> candidates;
  const std::set<const ir::Instruction*> sites = racy_sites(confirmed);
  if (sites.empty()) return candidates;

  // One value-flow graph powers the span narrowing for every candidate —
  // cheap relative to the verification gates each candidate then faces.
  const ValueFlowGraph vfg(module_, statics_.points_to,
                           statics_.resolved_calls);

  // Guard every access to the racy objects, not just the reported pair:
  // the confirmed set is schedule-dependent (a different seed confirms a
  // different subset of the same underlying races), and a lock that covers
  // only the witnessed sites leaves the sibling accesses racing — the
  // race-freedom gate would reject the patch on re-verification.
  std::set<std::string> objects;
  for (const race::RaceReport& report : confirmed) {
    if (!report.object_name.empty()) objects.insert(report.object_name);
  }
  std::set<const ir::Instruction*> guard_sites = sites;
  for (const auto& function : module_.functions()) {
    for (const auto& block : function->blocks()) {
      for (const auto& instr : block->instructions()) {
        for (const std::string& object : objects) {
          if (accesses_global(*instr, object)) {
            guard_sites.insert(instr.get());
            break;
          }
        }
      }
    }
  }
  const std::vector<GuardSpan> spans =
      guard_spans(module_, statics_, vfg, guard_sites);

  // --- 1. lock_reuse: one existing lock must cover every racy object ---
  {
    std::set<PointsTo::ObjectId> shared;
    bool first_object = true;
    for (const std::string& object : objects) {
      const std::set<PointsTo::ObjectId> tokens = protecting_tokens(
          module_, statics_.lock_facts, sites, object);
      if (first_object) {
        shared = tokens;
        first_object = false;
      } else {
        std::set<PointsTo::ObjectId> kept;
        std::set_intersection(shared.begin(), shared.end(), tokens.begin(),
                              tokens.end(),
                              std::inserter(kept, kept.begin()));
        shared = std::move(kept);
      }
    }
    if (!objects.empty() && !shared.empty()) {
      const PointsTo::ObjectId token = *shared.begin();
      const std::string name = token_global_name(statics_.points_to, token);
      // Guard only the sites that do not already hold the reused lock —
      // wrapping an access that acquired it on entry would self-deadlock,
      // and the already-guarded sites are precisely the evidence the lock
      // works.
      std::set<const ir::Instruction*> unguarded;
      for (const ir::Instruction* site : guard_sites) {
        bool held = false;
        for (const PointsTo::ObjectId h :
             statics_.lock_facts.must_held_before(site)) {
          if (h == token) {
            held = true;
            break;
          }
        }
        if (!held) unguarded.insert(site);
      }
      if (!name.empty() && !unguarded.empty()) {
        RepairCandidate candidate;
        candidate.strategy = Strategy::kLockReuse;
        candidate.lock = name;
        candidate.guards = guard_spans(module_, statics_, vfg, unguarded);
        candidates.push_back(std::move(candidate));
      }
    }
  }

  // --- 2. relocate: every report must have a movable spawn-window store ---
  {
    RepairCandidate candidate;
    candidate.strategy = Strategy::kRelocate;
    std::set<const ir::Instruction*> moved;
    bool all_movable = !confirmed.empty();
    for (const race::RaceReport& report : confirmed) {
      const ir::Instruction* movable = nullptr;
      ir::InstrCoord anchor;
      for (const ir::Instruction* side : {report.first.instr,
                                          report.second.instr}) {
        if (side != nullptr && is_movable_store(*side) &&
            in_spawn_window(*side, anchor)) {
          movable = side;
          break;
        }
      }
      if (movable == nullptr) {
        all_movable = false;
        break;
      }
      if (moved.insert(movable).second) {
        candidate.moves.push_back({ir::coord_of(*movable), anchor});
      }
    }
    if (all_movable && !candidate.moves.empty()) {
      candidates.push_back(std::move(candidate));
    }
  }

  // --- 3. lock_insert: always plannable — one fresh mutex for all spans ---
  {
    RepairCandidate candidate;
    candidate.strategy = Strategy::kLockInsert;
    candidate.lock = "__owl_fix";
    candidate.guards = spans;
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace owl::repair
