// Repair engine — applies RepairPlanner candidates and verifies them with
// three gates before accepting a fix (DESIGN.md §13):
//
//  A. race-freedom  — the full pipeline re-runs on the patched module with
//                     the session's detector configuration, once with
//                     prediction off and once with --predict on; both runs
//                     must confirm zero races and complete undegraded;
//  B. checker differential — the PR 7 checker suite (all checkers) runs on
//                     the patched module; every finding must already exist
//                     on the original (so a guard that introduces a
//                     deadlock or breaks lock discipline is rejected);
//  C. output equivalence — original and patched modules run under the
//                     deterministic round-robin schedule; the observable
//                     print sequences must be byte-identical, the patched
//                     run must finish cleanly, and a randomized deadlock
//                     smoke must stay deadlock-free.
//
// The first candidate passing all three gates wins; the engine reports it
// (strategy, lock, gate evidence, patched text) and the CLI decides
// whether files are written. Everything here is deterministic: nested
// pipelines run with jobs=1, no fault injector, no manifest, unlimited
// budgets, and repair disabled (no recursion).
#pragma once

#include <string>
#include <vector>

#include "analysis/static_info.hpp"
#include "core/pipeline.hpp"
#include "repair/report.hpp"

namespace owl::repair {

/// Plans, applies, and gate-verifies repairs for `confirmed` (the target's
/// verified races). Throws when the target carries no factory_for_module
/// hook — the pipeline absorbs that as a kRepair FailureRecord.
RepairReport attempt_repair(const core::PipelineTarget& target,
                            const core::PipelineOptions& session,
                            const analysis::ModuleStatic& statics,
                            const std::vector<race::RaceReport>& confirmed);

/// The owl-repair-v1 JSON body of `<stem>_repair.json`.
std::string render_repair_json(const RepairReport& report,
                               const std::string& target_name);

/// "<dir/>stem.mir" -> "stem_fixed.mir" (basename only — rendered output
/// must not depend on where the CLI found the module or writes the fix).
std::string fixed_module_name(const std::string& target_name);

}  // namespace owl::repair
