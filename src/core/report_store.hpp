// Stage-by-stage report accounting — the numbers behind the paper's
// Table 3 (reduction) and Table 2 (detection results).
#pragma once

#include <string>
#include <vector>

#include "race/report.hpp"
#include "support/failure.hpp"

namespace owl::core {

/// Snapshot labels along the Fig. 3 pipeline.
enum class Stage {
  kRawDetection,      ///< detector output before any reduction (R.R.)
  kAfterAnnotation,   ///< re-run with adhoc-sync annotations applied
  kAfterRaceVerifier, ///< reports confirmed "in the racing moment" (R.)
};

/// Table 3's row for one program.
struct StageCounts {
  std::size_t raw_reports = 0;          ///< R.R.
  std::size_t adhoc_syncs = 0;          ///< A.S. (unique annotated pairs)
  std::size_t after_annotation = 0;
  std::size_t verifier_eliminated = 0;  ///< R.V.E.
  std::size_t remaining = 0;            ///< R.
  double avg_analysis_seconds = 0.0;    ///< A.C. per report
  std::size_t vulnerability_reports = 0;///< OWL's final reports (Table 2)

  // --- checker suite (DESIGN.md §11) ---
  /// Findings from the optional concurrency checker stage. Serialized
  /// only when `checkers_ran` — the counters line stays byte-identical
  /// to pre-suite output whenever the checkers are off.
  std::size_t checker_findings = 0;
  bool checkers_ran = false;

  // --- sync-preserving prediction (DESIGN.md §12) ---
  /// Serialized only when `predict_ran`; off-mode output stays
  /// byte-identical to pre-predictor builds.
  std::size_t predict_candidates = 0;        ///< dynamic pairs SP-checked
  std::size_t predict_pruned = 0;            ///< reports proved infeasible
  std::size_t predict_new_confirmed = 0;     ///< predicted races replay kept
  std::size_t predict_schedules_avoided = 0; ///< verifier attempts not run
  bool predict_ran = false;

  // --- automated race repair (DESIGN.md §13) ---
  /// Serialized only when `repair_ran`; off-mode output stays
  /// byte-identical to pre-repair builds.
  std::string repair_status;            ///< repaired | unrepaired | no_races
  std::size_t repair_candidates = 0;    ///< candidates synthesized and tried
  bool repair_ran = false;

  // --- resilience accounting (Table 2/3's resilience column) ---
  /// Stage failures absorbed by the resilience layer. Non-empty means the
  /// row's numbers are best-effort under degradation, not a crash.
  std::vector<support::FailureRecord> failures;
  /// Retries consumed by the schedule-dependent stages.
  unsigned retries_used = 0;

  bool degraded() const noexcept { return !failures.empty(); }
  /// "ok" or "degraded(stage:cause,...)" for table cells.
  std::string resilience_summary() const {
    return support::failure_summary(failures);
  }

  /// Canonical text form for differential comparison: every behavioral
  /// counter and failure record, but no wall-clock fields
  /// (avg_analysis_seconds, FailureRecord::wall_seconds) — those vary
  /// run to run even when behavior is identical.
  std::string serialize() const;

  /// Fraction of raw reports pruned before vulnerability analysis.
  double reduction_ratio() const noexcept {
    if (raw_reports == 0) return 0.0;
    const std::size_t kept = remaining < raw_reports ? remaining : raw_reports;
    return 1.0 - static_cast<double>(kept) / static_cast<double>(raw_reports);
  }
};

/// Holds the report vectors at each pipeline stage.
class ReportStore {
 public:
  void set_stage(Stage stage, std::vector<race::RaceReport> reports);
  /// Reports recorded at `stage`; an unrecorded stage yields an empty
  /// vector (a degraded pipeline may legally skip stages, so reading one
  /// must not be a crash vector).
  const std::vector<race::RaceReport>& stage(Stage stage) const;
  bool has_stage(Stage stage) const noexcept;

  /// Renders one stage for logs/benches.
  std::string render_stage(Stage stage) const;

  /// Deterministic dump of every recorded stage, for differential
  /// comparison of pipeline runs (report rendering is id/name-based —
  /// no pointers, no timestamps).
  std::string canonical_dump() const;

 private:
  static constexpr std::size_t index_of(Stage stage) noexcept {
    return static_cast<std::size_t>(stage);
  }
  std::vector<race::RaceReport> stages_[3];
  bool present_[3] = {false, false, false};
};

}  // namespace owl::core
