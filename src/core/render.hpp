// The canonical CLI text rendering of pipeline results.
//
// Extracted from owl_cli so the serve layer (src/serve/executor.cpp) emits
// *the same bytes* for the same analysis: owl_serve's differential gate
// ("daemon responses byte-identical to one-shot owl_cli") holds by
// construction because both front ends call these renderers, not because
// two printf chains happen to agree. The "owl_cli: " prefixes are part of
// the canonical format and are kept verbatim regardless of which tool
// renders — changing them changes the service's response bytes and every
// golden output downstream.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace owl::core {

/// The always-printed per-target summary block:
///   owl_cli: <name>
///     raw race reports: ... (through resilience + failure records)
std::string render_cli_summary(const PipelineResult& result);

/// The detail sections that follow the summaries (suppressed entirely by
/// --quiet): verified races when `print_reports`, vulnerable input hints,
/// and attacks. Empty string when there is nothing to show.
std::string render_cli_details(const PipelineResult& result,
                               bool print_reports);

}  // namespace owl::core
