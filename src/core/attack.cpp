#include "core/attack.hpp"

#include "vuln/hint.hpp"

namespace owl::core {

std::string ConcurrencyAttack::to_string() const {
  std::string out = "=== concurrency attack";
  if (!program.empty()) out += " in " + program;
  out += " ===\n";
  out += race.to_string();
  out += vuln::render_hint(exploit);
  out += "dynamic verification: ";
  if (confirmed()) {
    out += "site reached, attack realized\n";
    for (const interp::SecurityEvent& event : verification.events) {
      if (event.kind == interp::SecurityEventKind::kDeadlock) continue;
      out += "  " + event.to_string() + "\n";
    }
  } else if (verification.site_reached) {
    out += "site reached, no security event observed\n";
  } else {
    out += "site not reached; diverged branches: " +
           std::to_string(verification.diverged_branches.size()) + "\n";
  }
  return out;
}

}  // namespace owl::core
