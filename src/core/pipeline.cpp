#include "core/pipeline.hpp"

#include <chrono>

#include "support/log.hpp"
#include "race/atomicity_detector.hpp"
#include "sync/annotator.hpp"

namespace owl::core {

std::size_t PipelineResult::confirmed_attacks() const noexcept {
  std::size_t n = 0;
  for (const ConcurrencyAttack& attack : attacks) {
    if (attack.confirmed()) ++n;
  }
  return n;
}

std::vector<race::RaceReport> Pipeline::detect(
    const PipelineTarget& target,
    const race::AnnotationSet* annotations) const {
  std::vector<race::RaceReport> merged;
  for (unsigned i = 0; i < target.detection_schedules; ++i) {
    std::unique_ptr<interp::Machine> machine = target.factory();
    if (target.detector == DetectorKind::kAtomicity) {
      // §8.3 extension: an atomicity-violation detector feeding the same
      // report stream. Annotations do not apply (the triples are already
      // schedule-classified), so `annotations` is intentionally unused.
      race::AtomicityDetector detector;
      machine->add_observer(&detector);
      interp::RandomScheduler scheduler(target.seed + i);
      machine->run(scheduler);
      std::vector<race::RaceReport> converted;
      for (const race::AtomicityReport& report : detector.take_reports()) {
        converted.push_back(report.to_race_report());
      }
      race::merge_reports(merged, std::move(converted));
      continue;
    }
    std::unique_ptr<race::TsanDetector> detector;
    std::unique_ptr<interp::Scheduler> scheduler;
    if (target.detector == DetectorKind::kSki) {
      detector = std::make_unique<race::SkiDetector>(annotations);
      scheduler = std::make_unique<interp::PctScheduler>(
          target.seed + i, /*depth=*/3, /*expected_steps=*/20000);
    } else {
      detector = std::make_unique<race::TsanDetector>(annotations);
      scheduler =
          std::make_unique<interp::RandomScheduler>(target.seed + i);
    }
    machine->add_observer(detector.get());
    machine->run(*scheduler);
    race::merge_reports(merged, detector->take_reports());
  }
  return merged;
}

PipelineResult Pipeline::run(const PipelineTarget& target) const {
  const auto t0 = std::chrono::steady_clock::now();
  PipelineResult result;

  // ---- step (1): raw detection ----
  std::vector<race::RaceReport> raw = detect(target, nullptr);
  result.counts.raw_reports = raw.size();
  OWL_LOG(kInfo) << target.name << ": " << raw.size() << " raw race reports";

  // ---- step (2): adhoc-sync annotation + re-run ----
  std::vector<race::RaceReport> reduced;
  if (options_.preset_annotations != nullptr) {
    result.counts.adhoc_syncs = options_.preset_annotations->pair_count();
    result.store.set_stage(Stage::kRawDetection, raw);
    reduced = options_.preset_annotations->empty()
                  ? std::move(raw)
                  : detect(target, options_.preset_annotations);
  } else if (options_.enable_adhoc_annotation) {
    const sync::AnnotationOutcome outcome =
        sync::annotate_adhoc_syncs(*target.module, raw);
    result.counts.adhoc_syncs = outcome.unique_adhoc_syncs;
    result.store.set_stage(Stage::kRawDetection, raw);
    if (!outcome.annotations.empty()) {
      reduced = detect(target, &outcome.annotations);
    } else {
      reduced = std::move(raw);
    }
  } else {
    result.store.set_stage(Stage::kRawDetection, raw);
    reduced = std::move(raw);
  }
  result.counts.after_annotation = reduced.size();
  result.store.set_stage(Stage::kAfterAnnotation, reduced);
  OWL_LOG(kInfo) << target.name << ": " << reduced.size()
                 << " reports after annotation ("
                 << result.counts.adhoc_syncs << " adhoc syncs)";

  // ---- step (3): dynamic race verification ----
  std::vector<race::RaceReport> survivors;
  if (options_.enable_race_verifier) {
    verify::RaceVerifier::Options vopts;
    vopts.max_attempts = options_.race_verifier_attempts;
    vopts.base_seed = target.seed * 7919 + 13;
    const verify::RaceVerifier verifier(vopts);
    for (race::RaceReport& report : reduced) {
      const verify::RaceVerifyResult vr =
          verifier.verify(report, target.factory);
      if (vr.verified) survivors.push_back(report);
    }
    result.counts.verifier_eliminated = reduced.size() - survivors.size();
  } else {
    survivors = std::move(reduced);
    result.counts.verifier_eliminated = 0;
  }
  result.counts.remaining = survivors.size();
  result.store.set_stage(Stage::kAfterRaceVerifier, survivors);
  OWL_LOG(kInfo) << target.name << ": " << survivors.size()
                 << " verified races remain";

  // ---- step (4): static vulnerability analysis (Algorithm 1) ----
  vuln::VulnerabilityAnalyzer::Options aopts;
  aopts.mode = options_.analyzer_mode;
  const vuln::VulnerabilityAnalyzer analyzer(*target.module, aopts);
  double analysis_seconds = 0.0;
  struct PendingAttack {
    std::size_t report_index;
    vuln::ExploitReport exploit;
  };
  std::vector<PendingAttack> pending;
  const std::vector<race::RaceReport>& final_reports =
      result.store.stage(Stage::kAfterRaceVerifier);
  for (std::size_t r = 0; r < final_reports.size(); ++r) {
    const vuln::VulnAnalysis analysis = analyzer.analyze(final_reports[r]);
    analysis_seconds += analysis.stats.seconds;
    for (const vuln::ExploitReport& exploit : analysis.exploits) {
      result.exploits.push_back(exploit);
      pending.push_back({r, exploit});
    }
  }
  result.counts.vulnerability_reports = result.exploits.size();
  result.counts.avg_analysis_seconds =
      final_reports.empty()
          ? 0.0
          : analysis_seconds / static_cast<double>(final_reports.size());
  OWL_LOG(kInfo) << target.name << ": " << result.exploits.size()
                 << " vulnerability reports";

  // ---- step (5): dynamic vulnerability verification ----
  if (options_.enable_vuln_verifier) {
    const race::MachineFactory& factory =
        target.exploit_factory ? target.exploit_factory : target.factory;
    verify::VulnVerifier::Options vopts;
    vopts.max_attempts = options_.vuln_verifier_attempts;
    vopts.base_seed = target.seed * 104729 + 7;
    vopts.thread_order = target.thread_order;
    const verify::VulnVerifier verifier(vopts);
    for (const PendingAttack& candidate : pending) {
      const verify::VulnVerifyResult vr = verifier.verify(
          candidate.exploit, factory, &final_reports[candidate.report_index]);
      if (!vr.site_reached) continue;
      ConcurrencyAttack attack;
      attack.program = target.name;
      attack.race = final_reports[candidate.report_index];
      attack.exploit = candidate.exploit;
      attack.verification = vr;
      result.attacks.push_back(std::move(attack));
    }
    OWL_LOG(kInfo) << target.name << ": " << result.attacks.size()
                   << " attack candidates reached their site, "
                   << result.confirmed_attacks() << " realized";
  }

  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace owl::core
