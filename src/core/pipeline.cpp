#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/static_info.hpp"
#include "core/manifest.hpp"
#include "race/atomicity_detector.hpp"
#include "race/predict/sp_predictor.hpp"
#include "repair/engine.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"
#include "sync/annotator.hpp"
#include "vuln/hint.hpp"

namespace owl::core {

/// Records runtime store→load dependences during detection runs
/// (--vuln-flow audit): per-address last writer, then (writer, reader)
/// instruction pairs on every read. Address maps reset per machine run —
/// simulated addresses are only meaningful within one execution.
class FlowAuditRecorder final : public interp::Observer {
 public:
  void begin_run() { last_write_.clear(); }

  void on_access(const Access& access, const interp::Machine&) override {
    if (access.instr == nullptr) return;
    if (access.is_write) {
      last_write_[access.addr] = access.instr;
      return;
    }
    const auto it = last_write_.find(access.addr);
    if (it != last_write_.end() && it->second != access.instr) {
      pairs_.insert({it->second, access.instr});
    }
  }
  void on_sync(const Sync&, const interp::Machine&) override {}

  /// Observed (writer, reader) instruction pairs, deduplicated.
  const std::set<std::pair<const ir::Instruction*, const ir::Instruction*>>&
  pairs() const noexcept {
    return pairs_;
  }

 private:
  std::unordered_map<interp::Address, const ir::Instruction*> last_write_;
  std::set<std::pair<const ir::Instruction*, const ir::Instruction*>> pairs_;
};

namespace {

using support::FailureCause;
using support::FaultInjector;
using support::FaultKind;
using support::PipelineStage;

// The prescreen treats integer constants below this limit as null-page
// values that can never alias a real object; the detector's dynamic
// re-check uses the interpreter's actual guard. They must agree.
static_assert(analysis::kSafeConstantLimit ==
                  static_cast<std::int64_t>(interp::kNullGuard),
              "prescreen constant-literal limit out of sync with the "
              "interpreter's null guard page");

void record_failure(StageCounts& counts, PipelineStage stage,
                    FailureCause cause, std::string detail,
                    std::uint64_t steps_spent = 0, double wall_seconds = 0.0,
                    unsigned retries = 0) {
  support::FailureRecord record;
  record.stage = stage;
  record.cause = cause;
  record.detail = std::move(detail);
  record.steps_spent = steps_spent;
  record.wall_seconds = wall_seconds;
  record.retries = retries;
  OWL_LOG(kWarn) << "pipeline stage degraded: " << record.to_string();
  support::metrics()
      .counter("pipeline.failures." +
               std::string(support::pipeline_stage_name(stage)))
      .inc();
  counts.failures.push_back(std::move(record));
}

/// Attributes non-throwing injected faults (stalls, truncation) observed
/// since begin_stage to the stage's accounting, so a fault-injection run
/// reports exactly what it degraded.
void attribute_injected(FaultInjector* injector, StageCounts& counts,
                        PipelineStage stage) {
  if (injector == nullptr) return;
  if (injector->fired_in_stage(FaultKind::kSchedulerStall)) {
    record_failure(counts, stage, FailureCause::kSchedulerStall,
                   "injected scheduler stall burned the schedule");
  }
  if (injector->fired_in_stage(FaultKind::kTruncatedEvents)) {
    record_failure(counts, stage, FailureCause::kTruncatedEvents,
                   "injected truncation dropped observer events");
  }
}

/// Records one stage's wall-clock into the shared (thread-safe) timing
/// aggregation on scope exit; no-op when timings are not requested.
class StageTimer {
 public:
  StageTimer(StageTimings* timings, const char* stage)
      : timings_(timings), stage_(stage),
        start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() { stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Ends the stage early when the timer's scope outlives it.
  void stop() {
    if (timings_ == nullptr || stopped_) return;
    stopped_ = true;
    timings_->record(
        stage_, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }

 private:
  StageTimings* timings_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace

std::size_t PipelineResult::confirmed_attacks() const noexcept {
  std::size_t n = 0;
  for (const ConcurrencyAttack& attack : attacks) {
    if (attack.confirmed()) ++n;
  }
  return n;
}

std::vector<race::RaceReport> Pipeline::detect_once(
    const PipelineTarget& target, const race::AnnotationSet* annotations,
    race::PrescreenView prescreen, std::uint64_t base_seed,
    support::Budget& budget, StageCounts& counts,
    race::predict::TraceRecorder* recorder,
    FlowAuditRecorder* flow_audit) const {
  FaultInjector* injector = options_.fault_injector;
  std::vector<race::RaceReport> merged;
  // Each pass starts a fresh trace set: the predict stage reasons over the
  // final (annotated, when there is one) pass — the same report stream the
  // verifier sees.
  if (recorder != nullptr) recorder->begin_pass(annotations);
  for (unsigned i = 0; i < target.detection_schedules; ++i) {
    if (const auto cause = budget.exhausted_by()) {
      record_failure(counts, PipelineStage::kDetection, *cause,
                     str_format("%u of %u schedules skipped",
                                target.detection_schedules - i,
                                target.detection_schedules),
                     budget.steps_spent(), budget.elapsed_seconds());
      break;
    }
    TRACE_SPAN("detect-schedule", target.name);
    support::metrics().counter("pipeline.detection_schedules").inc();
    std::unique_ptr<interp::Machine> machine = target.factory();
    machine->set_fault_injector(injector);
    if (target.detector == DetectorKind::kAtomicity) {
      // §8.3 extension: an atomicity-violation detector feeding the same
      // report stream. Annotations do not apply (the triples are already
      // schedule-classified), so `annotations` is intentionally unused.
      race::AtomicityDetector detector;
      machine->add_observer(&detector);
      if (recorder != nullptr) {
        machine->add_observer(recorder);
        recorder->begin_run();
      }
      if (flow_audit != nullptr) {
        machine->add_observer(flow_audit);
        flow_audit->begin_run();
      }
      interp::RandomScheduler scheduler(base_seed + i);
      const interp::RunResult run = machine->run(scheduler);
      if (recorder != nullptr) recorder->finish_run(*machine);
      budget.charge_steps(run.steps);
      std::vector<race::RaceReport> converted;
      for (const race::AtomicityReport& report : detector.take_reports()) {
        converted.push_back(report.to_race_report());
      }
      race::merge_reports(merged, std::move(converted));
      continue;
    }
    std::unique_ptr<race::TsanDetector> detector;
    std::unique_ptr<interp::Scheduler> scheduler;
    if (target.detector == DetectorKind::kSki) {
      detector = std::make_unique<race::SkiDetector>(
          annotations, options_.detector_impl, prescreen);
      scheduler = std::make_unique<interp::PctScheduler>(
          base_seed + i, /*depth=*/3, /*expected_steps=*/20000);
    } else {
      detector = std::make_unique<race::TsanDetector>(
          annotations, /*ski_watch_mode=*/false, options_.detector_impl,
          prescreen);
      scheduler = std::make_unique<interp::RandomScheduler>(base_seed + i);
    }
    machine->add_observer(detector.get());
    if (recorder != nullptr) {
      machine->add_observer(recorder);
      recorder->begin_run();
    }
    if (flow_audit != nullptr) {
      machine->add_observer(flow_audit);
      flow_audit->begin_run();
    }
    const interp::RunResult run = machine->run(*scheduler);
    if (recorder != nullptr) recorder->finish_run(*machine);
    budget.charge_steps(run.steps);
    race::merge_reports(merged, detector->take_reports());
  }
  return merged;
}

std::optional<std::vector<race::RaceReport>> Pipeline::detect(
    const PipelineTarget& target, const race::AnnotationSet* annotations,
    race::PrescreenView prescreen, StageCounts& counts,
    race::predict::TraceRecorder* recorder,
    FlowAuditRecorder* flow_audit) const {
  FaultInjector* injector = options_.fault_injector;
  const support::RetryPolicy& retry = options_.retry;
  for (unsigned attempt = 0; attempt < retry.max_attempts(); ++attempt) {
    if (injector != nullptr) {
      injector->begin_stage(PipelineStage::kDetection);
    }
    support::Budget budget(
        retry.budget_for(options_.stage_budgets.detection, attempt));
    try {
      if (injector != nullptr) injector->maybe_throw();
      std::vector<race::RaceReport> merged = detect_once(
          target, annotations, prescreen,
          retry.seed_for(target.seed, attempt), budget, counts, recorder,
          flow_audit);
      counts.retries_used += attempt;
      attribute_injected(injector, counts, PipelineStage::kDetection);
      return merged;
    } catch (const std::exception& error) {
      if (attempt + 1 >= retry.max_attempts()) {
        record_failure(counts, PipelineStage::kDetection,
                       FailureCause::kException, error.what(),
                       budget.steps_spent(), budget.elapsed_seconds(),
                       attempt);
        counts.retries_used += attempt;
        return std::nullopt;
      }
      OWL_LOG(kInfo) << target.name << ": detection attempt " << attempt
                     << " failed (" << error.what()
                     << "), retrying with rotated seed";
    }
  }
  return std::nullopt;
}

PipelineResult Pipeline::run(const PipelineTarget& target) const {
  const auto t0 = std::chrono::steady_clock::now();
  TRACE_SPAN("target", target.name);
  support::metrics().counter("pipeline.targets").inc();
  PipelineResult result;
  result.target_name = target.name;
  FaultInjector* injector = options_.fault_injector;
  const support::RetryPolicy& retry = options_.retry;
  if (injector != nullptr) injector->begin_target(target.name);

  // ---- step (0): whole-module static analysis ----
  // Computed once per target, in every mode: the resolved indirect calls
  // feed Algorithm 1 unconditionally, and the static counters flushed
  // below are part of the behavioral snapshot (mode-independent, so the
  // prescreen differential gate can byte-diff snapshots across modes).
  std::optional<analysis::ModuleStatic> module_static;
  if (target.module != nullptr) {
    TRACE_SPAN("static-analysis", target.name);
    const StageTimer timer(options_.stage_timings, "static-analysis");
    module_static.emplace(*target.module);
  }
  race::PrescreenView prescreen;
  if (options_.prescreen != race::PrescreenMode::kOff &&
      module_static.has_value() &&
      module_static->prescreen.pruning_enabled()) {
    prescreen.mode = options_.prescreen;
    prescreen.no_race = &module_static->prescreen.no_race();
  }
  if (module_static.has_value() &&
      !module_static->prescreen.pruning_enabled()) {
    OWL_LOG(kInfo) << target.name << ": prescreen pruning disabled ("
                   << module_static->prescreen.disable_reason() << ")";
  }

  // ---- checker suite (optional, DESIGN.md §11) ----
  // Static detection of deadlock / atomicity / lock-mismatch / CV-misuse
  // bugs over the step-(0) facts, with lock-order cycles confirmed by
  // scheduler replay through target.factory. Degrades, never dies: a
  // throwing checker leaves a FailureRecord and the Fig. 3 stages run on.
  if (options_.checkers.any() && module_static.has_value()) {
    TRACE_SPAN("checkers", target.name);
    const StageTimer timer(options_.stage_timings, "checkers");
    if (injector != nullptr) injector->begin_stage(PipelineStage::kCheckers);
    result.checkers_ran = true;
    result.counts.checkers_ran = true;
    try {
      if (injector != nullptr) injector->maybe_throw();
      const checkers::AnalysisContext ctx(*target.module, *module_static,
                                          target.factory);
      result.checker_findings = checkers::run_checkers(options_.checkers, ctx);
    } catch (const std::exception& error) {
      record_failure(result.counts, PipelineStage::kCheckers,
                     FailureCause::kException, error.what());
      result.checker_findings.clear();
    }
    result.counts.checker_findings = result.checker_findings.size();
    OWL_LOG(kInfo) << target.name << ": " << result.checker_findings.size()
                   << " checker finding(s) ["
                   << options_.checkers.canonical() << "]";
  }

  // ---- value-flow graph (--vuln-flow on/audit, DESIGN.md §14) ----
  // Built only when the mode asks for it: off-mode runs never construct
  // the graph, never emit its metrics, and stay byte-identical.
  std::optional<analysis::ValueFlowGraph> value_flow;
  if (options_.vuln_flow != analysis::ValueFlowMode::kOff &&
      target.module != nullptr && module_static.has_value()) {
    TRACE_SPAN("value-flow", target.name);
    const StageTimer timer(options_.stage_timings, "value-flow");
    value_flow.emplace(*target.module, module_static->points_to,
                       module_static->resolved_calls);
  }
  FlowAuditRecorder flow_recorder;
  FlowAuditRecorder* flow_audit =
      options_.vuln_flow == analysis::ValueFlowMode::kAudit &&
              value_flow.has_value()
          ? &flow_recorder
          : nullptr;

  // Event-trace capture for the predict stage (DESIGN.md §12): attached to
  // every detection pass; only the last pass's traces survive, so the
  // predictor reasons over exactly the executions that produced `reduced`.
  // Atomicity targets are out of SP theory's scope and never record.
  const bool predict_active = options_.predict != race::PredictMode::kOff &&
                              target.detector != DetectorKind::kAtomicity &&
                              target.module != nullptr;
  race::predict::TraceRecorder trace_recorder;
  race::predict::TraceRecorder* recorder =
      predict_active ? &trace_recorder : nullptr;

  // ---- step (1): raw detection ----
  std::vector<race::RaceReport> raw;
  {
    TRACE_SPAN("detection", target.name);
    const StageTimer timer(options_.stage_timings, "detection");
    raw = detect(target, nullptr, prescreen, result.counts, recorder,
                 flow_audit)
              .value_or(std::vector<race::RaceReport>{});
  }
  result.counts.raw_reports = raw.size();
  OWL_LOG(kInfo) << target.name << ": " << raw.size() << " raw race reports";

  // ---- step (2): adhoc-sync annotation + re-run ----
  if (injector != nullptr) injector->begin_stage(PipelineStage::kAnnotation);
  std::vector<race::RaceReport> reduced;
  result.store.set_stage(Stage::kRawDetection, raw);
  {
    TRACE_SPAN("annotation", target.name);
    const StageTimer annotation_timer(options_.stage_timings, "annotation");
    if (options_.preset_annotations != nullptr) {
      result.counts.adhoc_syncs = options_.preset_annotations->pair_count();
      if (options_.preset_annotations->empty()) {
        reduced = std::move(raw);
      } else {
        reduced = detect(target, options_.preset_annotations, prescreen,
                         result.counts, recorder, flow_audit)
                      .value_or(raw);  // degraded re-run: keep raw reports
      }
    } else if (options_.enable_adhoc_annotation) {
      std::optional<sync::AnnotationOutcome> outcome;
      try {
        if (injector != nullptr) injector->maybe_throw();
        outcome = sync::annotate_adhoc_syncs(*target.module, raw);
      } catch (const std::exception& error) {
        record_failure(result.counts, PipelineStage::kAnnotation,
                       FailureCause::kException, error.what());
      }
      if (outcome.has_value() && !outcome->annotations.empty()) {
        result.counts.adhoc_syncs = outcome->unique_adhoc_syncs;
        reduced = detect(target, &outcome->annotations, prescreen,
                         result.counts, recorder, flow_audit)
                      .value_or(raw);  // degraded re-run: keep raw reports
      } else {
        if (outcome.has_value()) {
          result.counts.adhoc_syncs = outcome->unique_adhoc_syncs;
        }
        reduced = std::move(raw);
      }
    } else {
      reduced = std::move(raw);
    }
  }
  result.counts.after_annotation = reduced.size();
  result.store.set_stage(Stage::kAfterAnnotation, reduced);
  OWL_LOG(kInfo) << target.name << ": " << reduced.size()
                 << " reports after annotation ("
                 << result.counts.adhoc_syncs << " adhoc syncs)";

  // ---- predict stage: sync-preserving race prediction (DESIGN.md §12) ----
  // Decides, from the traces the detection schedules already produced,
  // which reduced reports any sync-preserving reordering could co-enable —
  // and which unreported pairs could race. kOn prunes the verifier's input
  // to the feasible set and adds the predicted-new candidates (each still
  // subject to replay confirmation below); kAudit computes verdicts only
  // and cross-checks them after verification. A predictor failure degrades
  // to exhaustive behavior: nothing pruned, nothing added.
  const std::size_t reduced_from_detector = reduced.size();
  std::optional<race::predict::PredictOutcome> predict_outcome;
  if (predict_active) {
    TRACE_SPAN("predict", target.name);
    const StageTimer timer(options_.stage_timings, "predict");
    if (injector != nullptr) injector->begin_stage(PipelineStage::kPredict);
    result.predict_ran = true;
    result.counts.predict_ran = true;
    try {
      if (injector != nullptr) injector->maybe_throw();
      const race::predict::SpPredictor predictor;
      predict_outcome =
          predictor.analyze(target.module, trace_recorder.traces(), reduced);
    } catch (const std::exception& error) {
      record_failure(result.counts, PipelineStage::kPredict,
                     FailureCause::kException, error.what());
      predict_outcome.reset();
    }
    if (predict_outcome.has_value()) {
      result.counts.predict_candidates = predict_outcome->candidates;
      if (options_.predict == race::PredictMode::kOn) {
        std::vector<race::RaceReport> kept;
        kept.reserve(reduced.size() + predict_outcome->predicted_new.size());
        for (race::RaceReport& report : reduced) {
          if (predict_outcome->verdict_for(report.key()) ==
              race::predict::Feasibility::kInfeasible) {
            ++result.counts.predict_pruned;
          } else {
            kept.push_back(std::move(report));
          }
        }
        for (const race::RaceReport& report :
             predict_outcome->predicted_new) {
          kept.push_back(report);
        }
        std::sort(kept.begin(), kept.end(), race::report_order);
        reduced = std::move(kept);
        // Every pruned report would have burned its full attempt budget
        // (an infeasible pair never verifies, and failure has no early
        // exit) — that is the exploration this stage saves.
        result.counts.predict_schedules_avoided =
            result.counts.predict_pruned * options_.race_verifier_attempts;
      } else {
        for (const race::RaceReport& report : reduced) {
          if (predict_outcome->verdict_for(report.key()) ==
              race::predict::Feasibility::kInfeasible) {
            ++result.counts.predict_pruned;
          }
        }
      }
      OWL_LOG(kInfo) << target.name << ": predict checked "
                     << predict_outcome->candidates << " candidate pair(s), "
                     << result.counts.predict_pruned << " infeasible, "
                     << predict_outcome->predicted_new.size()
                     << " predicted-new";
    }
  }

  // ---- step (3): dynamic race verification ----
  std::vector<race::RaceReport> survivors;
  if (options_.enable_race_verifier) {
    TRACE_SPAN("race-verification", target.name);
    const StageTimer timer(options_.stage_timings, "race-verification");
    if (injector != nullptr) {
      injector->begin_stage(PipelineStage::kRaceVerification);
    }
    support::Budget stage_budget(options_.stage_budgets.race_verification);
    std::size_t livelocked_reports = 0;
    std::size_t passed_through = 0;
    bool stage_exception_absorbed = false;
    for (std::size_t r = 0; r < reduced.size(); ++r) {
      race::RaceReport& report = reduced[r];
      if (const auto cause = stage_budget.exhausted_by()) {
        // Deadline hit mid-stage: the rest of the reports pass through
        // unverified (conservative: degradation must not hide attacks).
        record_failure(result.counts, PipelineStage::kRaceVerification,
                       *cause,
                       str_format("%zu of %zu reports passed through "
                                  "unverified",
                                  reduced.size() - r, reduced.size()),
                       stage_budget.steps_spent(),
                       stage_budget.elapsed_seconds());
        for (std::size_t k = r; k < reduced.size(); ++k) {
          // Predicted candidates never pass through unconfirmed: they are
          // hypotheses, not observations.
          if (options_.keep_unverified_on_degradation &&
              !reduced[k].predicted) {
            survivors.push_back(reduced[k]);
          }
        }
        break;
      }
      verify::RaceVerifyResult vr;
      bool verify_ran = false;
      for (unsigned attempt = 0; attempt < retry.max_attempts(); ++attempt) {
        verify::RaceVerifier::Options vopts;
        vopts.max_attempts = options_.race_verifier_attempts;
        vopts.base_seed =
            retry.seed_for(target.seed * 7919 + 13, attempt);
        vopts.fault_injector = injector;
        // Schedule-exploration sharding: the verifier itself falls back
        // to the sequential loop whenever a budget or the injector makes
        // attempts order-dependent.
        vopts.pool = options_.verifier_pool;
        // One report may use what is left of the stage, grown per retry.
        support::BudgetSpec per_report;
        per_report.steps = stage_budget.remaining_steps() == UINT64_MAX
                               ? 0
                               : stage_budget.remaining_steps();
        vopts.budget = retry.budget_for(per_report, attempt);
        try {
          if (injector != nullptr) injector->maybe_throw();
          vr = verify::RaceVerifier(vopts).verify(report, target.factory);
          verify_ran = true;
          result.counts.retries_used += attempt;
          break;
        } catch (const std::exception& error) {
          if (attempt + 1 >= retry.max_attempts()) {
            if (!stage_exception_absorbed) {
              // One record per stage; repeating it per report is noise.
              record_failure(result.counts,
                             PipelineStage::kRaceVerification,
                             FailureCause::kException, error.what(), 0, 0.0,
                             attempt);
              stage_exception_absorbed = true;
            }
            result.counts.retries_used += attempt;
          }
        }
      }
      if (!verify_ran) {
        if (options_.keep_unverified_on_degradation && !report.predicted) {
          survivors.push_back(report);
          ++passed_through;
        }
        continue;
      }
      stage_budget.charge_steps(vr.steps_spent);
      if (vr.verified) {
        survivors.push_back(report);
      } else if (vr.livelocked || vr.budget_exhausted) {
        ++livelocked_reports;
        if (options_.keep_unverified_on_degradation && !report.predicted) {
          survivors.push_back(report);
          ++passed_through;
        }
      }
      // else: cleanly eliminated (the R.V.E. path).
    }
    if (livelocked_reports > 0) {
      record_failure(
          result.counts, PipelineStage::kRaceVerification,
          FailureCause::kLivelock,
          str_format("%zu report(s) livelocked or ran out of budget; %zu "
                     "passed through unverified",
                     livelocked_reports, passed_through),
          stage_budget.steps_spent(), stage_budget.elapsed_seconds());
    }
    // Elimination is counted against the *detector's* reduced set, so the
    // Table 3 column means the same thing in every predict mode: a report
    // the predictor pruned counts as eliminated (the verifier would have
    // eliminated it dynamically), while a confirmed predicted-new report
    // is an addition, not a survivor of reduction.
    std::size_t detector_survivors = 0;
    for (const race::RaceReport& report : survivors) {
      if (!report.predicted) ++detector_survivors;
      else ++result.counts.predict_new_confirmed;
    }
    result.counts.verifier_eliminated =
        reduced_from_detector >= detector_survivors
            ? reduced_from_detector - detector_survivors
            : 0;
  } else {
    // Without the verifier there is no replay confirmation, so predicted
    // candidates are dropped rather than reported as observations.
    if (result.predict_ran) {
      survivors.reserve(reduced.size());
      for (race::RaceReport& report : reduced) {
        if (!report.predicted) survivors.push_back(std::move(report));
      }
    } else {
      survivors = std::move(reduced);
    }
    result.counts.verifier_eliminated = 0;
  }
  result.counts.remaining = survivors.size();
  result.store.set_stage(Stage::kAfterRaceVerifier, survivors);
  OWL_LOG(kInfo) << target.name << ": " << survivors.size()
                 << " verified races remain";

  // Audit cross-check: a replay-confirmed data race the predictor called
  // infeasible falsifies the pruning verdict — with --predict on that race
  // would have been lost. Advisory counter; the CLI and serve executor
  // turn a non-zero count into exit 3.
  if (options_.predict == race::PredictMode::kAudit &&
      predict_outcome.has_value()) {
    std::uint64_t violations = 0;
    for (const race::RaceReport& report :
         result.store.stage(Stage::kAfterRaceVerifier)) {
      if (report.kind == race::ReportKind::kDataRace && report.verified &&
          predict_outcome->verdict_for(report.key()) ==
              race::predict::Feasibility::kInfeasible) {
        ++violations;
      }
    }
    support::metrics().advisory("predict.audit_violations").inc(violations);
  }

  // Flow-audit cross-check: every store→load dependence the detection
  // schedules actually exhibited must be explained by a static mem edge
  // (or flagged unknown on either side). An uncovered pair means the
  // value-flow graph would have missed a real memory-mediated propagation
  // — a soundness violation. Advisory counter; the CLI and serve executor
  // turn a non-zero count into exit 3, mirroring --prescreen audit.
  if (flow_audit != nullptr) {
    std::uint64_t violations = 0;
    for (const auto& [writer, reader] : flow_recorder.pairs()) {
      if (!value_flow->covers(writer, reader)) ++violations;
    }
    support::metrics().advisory("vulnflow.audit_violations").inc(violations);
  }

  // ---- step (4): static vulnerability analysis (Algorithm 1) ----
  struct PendingAttack {
    std::size_t report_index;
    vuln::ExploitReport exploit;
  };
  std::vector<PendingAttack> pending;
  const std::vector<race::RaceReport>& final_reports =
      result.store.stage(Stage::kAfterRaceVerifier);
  {
    TRACE_SPAN("vuln-analysis", target.name);
    const StageTimer analysis_timer(options_.stage_timings, "vuln-analysis");
    if (injector != nullptr) {
      injector->begin_stage(PipelineStage::kVulnAnalysis);
    }
    vuln::VulnerabilityAnalyzer::Options aopts;
    aopts.mode = options_.analyzer_mode;
    if (module_static.has_value()) {
      aopts.resolved_indirect = &module_static->resolved_calls;
    }
    if (value_flow.has_value()) aopts.value_flow = &*value_flow;
    const vuln::VulnerabilityAnalyzer analyzer(*target.module, aopts);
    support::Budget analysis_budget(options_.stage_budgets.vuln_analysis);
    double analysis_seconds = 0.0;
    std::size_t analysis_failures = 0;
    std::string analysis_error;
    for (std::size_t r = 0; r < final_reports.size(); ++r) {
      if (const auto cause = analysis_budget.exhausted_by()) {
        record_failure(result.counts, PipelineStage::kVulnAnalysis, *cause,
                       str_format("%zu of %zu reports unanalyzed",
                                  final_reports.size() - r,
                                  final_reports.size()),
                       analysis_budget.steps_spent(),
                       analysis_budget.elapsed_seconds());
        break;
      }
      try {
        if (injector != nullptr) injector->maybe_throw();
        const vuln::VulnAnalysis analysis = analyzer.analyze(final_reports[r]);
        analysis_seconds += analysis.stats.seconds;
        for (const vuln::ExploitReport& exploit : analysis.exploits) {
          result.exploits.push_back(exploit);
          pending.push_back({r, exploit});
        }
      } catch (const std::exception& error) {
        ++analysis_failures;
        analysis_error = error.what();
      }
    }
    if (analysis_failures > 0) {
      record_failure(result.counts, PipelineStage::kVulnAnalysis,
                     FailureCause::kException,
                     str_format("%zu report(s) unanalyzable: %s",
                                analysis_failures, analysis_error.c_str()));
    }
    result.counts.vulnerability_reports = result.exploits.size();
    result.counts.avg_analysis_seconds =
        final_reports.empty()
            ? 0.0
            : analysis_seconds / static_cast<double>(final_reports.size());
    OWL_LOG(kInfo) << target.name << ": " << result.exploits.size()
                   << " vulnerability reports";
  }

  // ---- step (5): dynamic vulnerability verification ----
  if (options_.enable_vuln_verifier) {
    TRACE_SPAN("vuln-verification", target.name);
    const StageTimer timer(options_.stage_timings, "vuln-verification");
    if (injector != nullptr) {
      injector->begin_stage(PipelineStage::kVulnVerification);
    }
    const race::MachineFactory& factory =
        target.exploit_factory ? target.exploit_factory : target.factory;
    support::Budget stage_budget(options_.stage_budgets.vuln_verification);
    std::size_t livelocked_exploits = 0;
    std::size_t skipped_exploits = 0;
    bool stage_exception_absorbed = false;
    for (std::size_t c = 0; c < pending.size(); ++c) {
      const PendingAttack& candidate = pending[c];
      if (const auto cause = stage_budget.exhausted_by()) {
        record_failure(result.counts, PipelineStage::kVulnVerification,
                       *cause,
                       str_format("%zu of %zu exploit candidates unverified",
                                  pending.size() - c, pending.size()),
                       stage_budget.steps_spent(),
                       stage_budget.elapsed_seconds());
        break;
      }
      verify::VulnVerifyResult vr;
      bool verify_ran = false;
      for (unsigned attempt = 0; attempt < retry.max_attempts(); ++attempt) {
        verify::VulnVerifier::Options vopts;
        vopts.max_attempts = options_.vuln_verifier_attempts;
        vopts.base_seed =
            retry.seed_for(target.seed * 104729 + 7, attempt);
        vopts.thread_order = target.thread_order;
        vopts.fault_injector = injector;
        support::BudgetSpec per_exploit;
        per_exploit.steps = stage_budget.remaining_steps() == UINT64_MAX
                                ? 0
                                : stage_budget.remaining_steps();
        vopts.budget = retry.budget_for(per_exploit, attempt);
        try {
          if (injector != nullptr) injector->maybe_throw();
          vr = verify::VulnVerifier(vopts).verify(
              candidate.exploit, factory,
              &final_reports[candidate.report_index]);
          verify_ran = true;
          result.counts.retries_used += attempt;
          break;
        } catch (const std::exception& error) {
          if (attempt + 1 >= retry.max_attempts()) {
            if (!stage_exception_absorbed) {
              record_failure(result.counts,
                             PipelineStage::kVulnVerification,
                             FailureCause::kException, error.what(), 0, 0.0,
                             attempt);
              stage_exception_absorbed = true;
            }
            result.counts.retries_used += attempt;
          }
        }
      }
      if (!verify_ran) {
        ++skipped_exploits;
        continue;
      }
      stage_budget.charge_steps(vr.steps_spent);
      if (vr.livelocked) ++livelocked_exploits;
      if (!vr.site_reached) continue;
      ConcurrencyAttack attack;
      attack.program = target.name;
      attack.race = final_reports[candidate.report_index];
      attack.exploit = candidate.exploit;
      attack.verification = vr;
      result.attacks.push_back(std::move(attack));
    }
    if (livelocked_exploits > 0) {
      record_failure(result.counts, PipelineStage::kVulnVerification,
                     FailureCause::kLivelock,
                     str_format("%zu exploit session(s) livelocked",
                                livelocked_exploits),
                     stage_budget.steps_spent(),
                     stage_budget.elapsed_seconds());
    }
    OWL_LOG(kInfo) << target.name << ": " << result.attacks.size()
                   << " attack candidates reached their site, "
                   << result.confirmed_attacks() << " realized";
  }

  // ---- repair stage (optional, DESIGN.md §13) ----
  // Closes the loop on the confirmed races: synthesize candidate patches,
  // verify each by re-running the pipeline machinery above on the patched
  // module (race-freedom incl. --predict on, checker differential, output
  // equivalence), report the first winner. Nested verification pipelines
  // run with repair disabled — the stage never recurses. Degrades, never
  // dies, like every other stage.
  if (options_.repair.enabled && target.module != nullptr &&
      module_static.has_value()) {
    TRACE_SPAN("repair", target.name);
    const StageTimer timer(options_.stage_timings, "repair");
    if (injector != nullptr) injector->begin_stage(PipelineStage::kRepair);
    result.repair_ran = true;
    result.counts.repair_ran = true;
    std::vector<race::RaceReport> confirmed;
    for (const race::RaceReport& report :
         result.store.stage(Stage::kAfterRaceVerifier)) {
      if (report.verified) confirmed.push_back(report);
    }
    try {
      if (injector != nullptr) injector->maybe_throw();
      result.repair =
          repair::attempt_repair(target, options_, *module_static, confirmed);
    } catch (const std::exception& error) {
      record_failure(result.counts, PipelineStage::kRepair,
                     FailureCause::kException, error.what());
      result.repair = repair::RepairReport{};
      result.repair.status = "unrepaired";
    }
    result.counts.repair_status = result.repair.status;
    result.counts.repair_candidates = result.repair.candidates_tried;
    OWL_LOG(kInfo) << target.name << ": repair " << result.repair.status
                   << " (" << result.repair.candidates_tried
                   << " candidate(s) tried)";
  }

  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (options_.stage_timings != nullptr) {
    options_.stage_timings->record("target-total", result.total_seconds);
  }

  // Behavioral rollup into the global registry — the Table 2/3 column
  // cross-check the manifest snapshot carries. All counters: sums are
  // interleaving-independent, so jobs=N flushes identically to jobs=1.
  {
    support::MetricsRegistry& registry = support::metrics();
    registry.counter("pipeline.reports.raw").inc(result.counts.raw_reports);
    registry.counter("pipeline.adhoc_syncs").inc(result.counts.adhoc_syncs);
    registry.counter("pipeline.reports.after_annotation")
        .inc(result.counts.after_annotation);
    registry.counter("pipeline.reports.verifier_eliminated")
        .inc(result.counts.verifier_eliminated);
    registry.counter("pipeline.reports.verified")
        .inc(result.counts.remaining);
    registry.counter("pipeline.vulnerability_reports")
        .inc(result.counts.vulnerability_reports);
    registry.counter("pipeline.attacks.site_reached")
        .inc(result.attacks.size());
    registry.counter("pipeline.attacks.confirmed")
        .inc(result.confirmed_attacks());
    registry.counter("pipeline.retries").inc(result.counts.retries_used);
    if (result.checkers_ran) {
      // Registered only when the stage ran: the metrics snapshot in the
      // manifest stays byte-identical to pre-suite runs with checkers off.
      registry.counter("pipeline.checker_findings")
          .inc(result.checker_findings.size());
    }
    if (result.predict_ran) {
      // Same gating: predict-off snapshots carry no predict keys at all.
      registry.counter("predict.candidates")
          .inc(result.counts.predict_candidates);
      registry.counter("predict.schedules_avoided")
          .inc(result.counts.predict_schedules_avoided);
      if (predict_outcome.has_value()) {
        registry.advisory("predict.closure_iterations")
            .inc(predict_outcome->closure_iterations);
      }
    }
    if (result.repair_ran) {
      // Same gating: repair-off snapshots carry no repair keys at all.
      registry.counter("repair.candidates_tried")
          .inc(result.counts.repair_candidates);
      registry.counter("repair.repaired")
          .inc(result.repair.status == "repaired" ? 1 : 0);
    }
    if (value_flow.has_value()) {
      // Same gating: vuln-flow-off snapshots carry no valueflow keys.
      const analysis::ValueFlowGraph::Stats& vf = value_flow->stats();
      registry.counter("valueflow.nodes").inc(vf.nodes);
      registry.counter("valueflow.edges")
          .inc(vf.def_use_edges + vf.call_edges);
      registry.counter("valueflow.mem_edges").inc(vf.mem_edges);
    }
    registry.histogram("pipeline.raw_reports_per_target")
        .observe(result.counts.raw_reports);
    registry.wall_clock("pipeline.wall_seconds").add(result.total_seconds);
    if (module_static.has_value()) {
      registry.counter("callgraph.indirect_resolved")
          .inc(module_static->indirect_resolved_edges);
      registry.counter("prescreen.prunable_instructions")
          .inc(module_static->prescreen.no_race().size());
    }
  }
  return result;
}

std::vector<PipelineResult> Pipeline::run_many(
    const std::vector<PipelineTarget>& targets) const {
  std::vector<PipelineResult> results(targets.size());
  // Per-target forks of the shared injector: each worker probes only its
  // own fork, so the firing sequence a target observes is a function of
  // that target alone — the load-bearing fact behind jobs=1 and jobs=N
  // producing identical results under fault injection.
  std::vector<std::unique_ptr<support::FaultInjector>> forks(targets.size());

  const auto run_one = [&](std::size_t index) {
    const PipelineTarget& target = targets[index];
    PipelineOptions local = options_;
    // Target-level parallelism already feeds the workers; nesting the
    // verifier's attempt sharding on top would oversubscribe.
    if (local.jobs != 1) local.verifier_pool = nullptr;
    if (options_.fault_injector != nullptr) {
      forks[index] = std::make_unique<support::FaultInjector>(
          options_.fault_injector->fork());
      local.fault_injector = forks[index].get();
    }
    try {
      results[index] = Pipeline(local).run(target);
    } catch (const std::exception& error) {
      // run() isolates its own stages; this catches failures outside them
      // (e.g. a throwing machine factory or a malformed module). The target
      // is reported degraded at the driver level and the run continues.
      PipelineResult failed;
      failed.target_name = target.name;
      record_failure(failed.counts, PipelineStage::kDriver,
                     FailureCause::kException, error.what());
      results[index] = std::move(failed);
    }
  };

  if (options_.jobs == 1 || targets.size() <= 1) {
    for (std::size_t i = 0; i < targets.size(); ++i) run_one(i);
  } else {
    support::ThreadPool pool(options_.jobs);
    pool.parallel_for(targets.size(), run_one);
  }

  // Merge fork accounting back in input order so events() reads as one
  // deterministic log no matter how execution interleaved.
  if (options_.fault_injector != nullptr) {
    for (const auto& fork : forks) {
      if (fork != nullptr) options_.fault_injector->absorb(*fork);
    }
  }

  if (!options_.manifest_path.empty()) {
    const std::string json =
        render_manifest(options_.manifest_tool, options_, targets, results);
    if (!write_manifest(options_.manifest_path, json)) {
      // An unwritable manifest must not degrade the results themselves —
      // it is observability, not behavior. Loud log, nothing else.
      OWL_LOG(kWarn) << "run manifest not written to "
                     << options_.manifest_path;
    }
  }
  return results;
}

std::string serialize_result(const PipelineResult& result) {
  std::string out = "=== target " + result.target_name + " ===\n";
  out += result.counts.serialize();
  out += result.store.canonical_dump();
  if (result.checkers_ran) {
    out += str_format("[checker findings %zu]\n",
                      result.checker_findings.size());
    for (const checkers::BugReport& report : result.checker_findings) {
      out += report.to_string();
    }
  }
  if (result.repair_ran) {
    // The patched module is folded in as a size + FNV-1a digest: repeat
    // runs and jobs=1-vs-N runs must synthesize byte-identical fixes, and
    // this pins that without dumping whole modules into the diff.
    std::uint64_t digest = 1469598103934665603ull;
    for (const char c : result.repair.patched_text) {
      digest ^= static_cast<unsigned char>(c);
      digest *= 1099511628211ull;
    }
    out += str_format(
        "[repair status=%s strategy=%s lock=%s candidates=%u fixed=%s "
        "patched_bytes=%zu patched_fnv=%016llx]\n",
        result.repair.status.c_str(), result.repair.strategy.c_str(),
        result.repair.lock.c_str(), result.repair.candidates_tried,
        result.repair.fixed_module.c_str(),
        result.repair.patched_text.size(),
        static_cast<unsigned long long>(digest));
    for (const repair::RepairedRace& race : result.repair.races) {
      out += str_format("repair-race: %s %s <-> %s\n", race.object.c_str(),
                        race.first_loc.c_str(), race.second_loc.c_str());
    }
  }
  out += str_format("[exploits %zu]\n", result.exploits.size());
  for (const vuln::ExploitReport& exploit : result.exploits) {
    out += vuln::render_hint(exploit);
  }
  out += str_format("[attacks %zu, confirmed %zu]\n", result.attacks.size(),
                    result.confirmed_attacks());
  for (const ConcurrencyAttack& attack : result.attacks) {
    out += attack.to_string();
  }
  return out;
}

}  // namespace owl::core
