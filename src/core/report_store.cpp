#include "core/report_store.hpp"

#include "support/strings.hpp"

namespace owl::core {

std::string StageCounts::serialize() const {
  std::string out = str_format(
      "raw=%zu adhoc=%zu after_annotation=%zu eliminated=%zu remaining=%zu "
      "vuln_reports=%zu retries=%u\n",
      raw_reports, adhoc_syncs, after_annotation, verifier_eliminated,
      remaining, vulnerability_reports, retries_used);
  if (checkers_ran) {
    out += str_format("checkers: findings=%zu\n", checker_findings);
  }
  if (predict_ran) {
    out += str_format(
        "predict: candidates=%zu pruned=%zu new_confirmed=%zu "
        "schedules_avoided=%zu\n",
        predict_candidates, predict_pruned, predict_new_confirmed,
        predict_schedules_avoided);
  }
  if (repair_ran) {
    out += str_format("repair: status=%s candidates=%zu\n",
                      repair_status.c_str(), repair_candidates);
  }
  for (const support::FailureRecord& record : failures) {
    out += str_format(
        "failure: %s/%s steps=%llu retries=%u (%s)\n",
        std::string(support::pipeline_stage_name(record.stage)).c_str(),
        std::string(support::failure_cause_name(record.cause)).c_str(),
        static_cast<unsigned long long>(record.steps_spent), record.retries,
        record.detail.c_str());
  }
  return out;
}

void ReportStore::set_stage(Stage stage, std::vector<race::RaceReport> reports) {
  stages_[index_of(stage)] = std::move(reports);
  present_[index_of(stage)] = true;
}

const std::vector<race::RaceReport>& ReportStore::stage(Stage stage) const {
  static const std::vector<race::RaceReport> kEmpty;
  if (!present_[index_of(stage)]) return kEmpty;
  return stages_[index_of(stage)];
}

bool ReportStore::has_stage(Stage stage) const noexcept {
  return present_[index_of(stage)];
}

std::string ReportStore::render_stage(Stage stage) const {
  if (!has_stage(stage)) return "<stage not recorded>\n";
  std::string out;
  for (const race::RaceReport& report : this->stage(stage)) {
    out += report.to_string();
    out += "\n";
  }
  return out;
}

std::string ReportStore::canonical_dump() const {
  static constexpr const char* kStageNames[3] = {
      "raw-detection", "after-annotation", "after-race-verifier"};
  std::string out;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto stage = static_cast<Stage>(i);
    out += std::string("[stage ") + kStageNames[i] + "]\n";
    out += render_stage(stage);
  }
  return out;
}

}  // namespace owl::core
