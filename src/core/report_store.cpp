#include "core/report_store.hpp"

namespace owl::core {

void ReportStore::set_stage(Stage stage, std::vector<race::RaceReport> reports) {
  stages_[index_of(stage)] = std::move(reports);
  present_[index_of(stage)] = true;
}

const std::vector<race::RaceReport>& ReportStore::stage(Stage stage) const {
  static const std::vector<race::RaceReport> kEmpty;
  if (!present_[index_of(stage)]) return kEmpty;
  return stages_[index_of(stage)];
}

bool ReportStore::has_stage(Stage stage) const noexcept {
  return present_[index_of(stage)];
}

std::string ReportStore::render_stage(Stage stage) const {
  if (!has_stage(stage)) return "<stage not recorded>\n";
  std::string out;
  for (const race::RaceReport& report : this->stage(stage)) {
    out += report.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace owl::core
