#include "core/report_store.hpp"

#include <cassert>

namespace owl::core {

void ReportStore::set_stage(Stage stage, std::vector<race::RaceReport> reports) {
  stages_[index_of(stage)] = std::move(reports);
  present_[index_of(stage)] = true;
}

const std::vector<race::RaceReport>& ReportStore::stage(Stage stage) const {
  assert(present_[index_of(stage)] && "stage not recorded");
  return stages_[index_of(stage)];
}

bool ReportStore::has_stage(Stage stage) const noexcept {
  return present_[index_of(stage)];
}

std::string ReportStore::render_stage(Stage stage) const {
  if (!has_stage(stage)) return "<stage not recorded>\n";
  std::string out;
  for (const race::RaceReport& report : this->stage(stage)) {
    out += report.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace owl::core
