#include "core/render.hpp"

#include "support/strings.hpp"
#include "vuln/hint.hpp"

namespace owl::core {

std::string render_cli_summary(const PipelineResult& result) {
  std::string out;
  out += str_format("owl_cli: %s\n", result.target_name.c_str());
  out += str_format("  raw race reports:      %zu\n",
                    result.counts.raw_reports);
  out += str_format("  adhoc syncs annotated: %zu\n",
                    result.counts.adhoc_syncs);
  out += str_format("  verifier eliminated:   %zu\n",
                    result.counts.verifier_eliminated);
  out += str_format("  verified races:        %zu\n", result.counts.remaining);
  out += str_format("  vulnerability reports: %zu\n",
                    result.counts.vulnerability_reports);
  out += str_format("  attacks (site reached/realized): %zu/%zu\n",
                    result.attacks.size(), result.confirmed_attacks());
  if (result.checkers_ran) {
    out += str_format("  checker findings:      %zu\n",
                      result.checker_findings.size());
  }
  if (result.predict_ran) {
    out += str_format(
        "  predict: candidates=%zu pruned=%zu new=%zu avoided=%zu\n",
        result.counts.predict_candidates, result.counts.predict_pruned,
        result.counts.predict_new_confirmed,
        result.counts.predict_schedules_avoided);
  }
  out += str_format("  resilience:            %s\n",
                    result.counts.resilience_summary().c_str());
  if (result.degraded()) {
    for (const support::FailureRecord& record : result.counts.failures) {
      out += str_format("    %s\n", record.to_string().c_str());
    }
  }
  return out;
}

std::string render_cli_details(const PipelineResult& result,
                               bool print_reports) {
  std::string out;
  if (print_reports) {
    out += str_format("\n--- verified races (%s) ---\n",
                      result.target_name.c_str());
    for (const race::RaceReport& report :
         result.store.stage(Stage::kAfterRaceVerifier)) {
      out += report.to_string();
      out += "\n";
    }
  }
  if (!result.exploits.empty()) {
    out += str_format("\n--- vulnerable input hints (%s) ---\n",
                      result.target_name.c_str());
    for (const vuln::ExploitReport& exploit : result.exploits) {
      out += vuln::render_hint(exploit);
    }
  }
  if (!result.attacks.empty()) {
    out += str_format("\n--- attacks (%s) ---\n", result.target_name.c_str());
    for (const ConcurrencyAttack& attack : result.attacks) {
      out += attack.to_string();
    }
  }
  if (result.checkers_ran) {
    out += str_format("\n--- checker findings (%s) ---\n",
                      result.target_name.c_str());
    if (result.checker_findings.empty()) {
      out += "none\n";
    }
    for (const checkers::BugReport& report : result.checker_findings) {
      out += report.to_string();
    }
  }
  return out;
}

}  // namespace owl::core
