#include "core/render.hpp"

#include "support/strings.hpp"
#include "vuln/hint.hpp"

namespace owl::core {

std::string render_cli_summary(const PipelineResult& result) {
  std::string out;
  out += str_format("owl_cli: %s\n", result.target_name.c_str());
  out += str_format("  raw race reports:      %zu\n",
                    result.counts.raw_reports);
  out += str_format("  adhoc syncs annotated: %zu\n",
                    result.counts.adhoc_syncs);
  out += str_format("  verifier eliminated:   %zu\n",
                    result.counts.verifier_eliminated);
  out += str_format("  verified races:        %zu\n", result.counts.remaining);
  out += str_format("  vulnerability reports: %zu\n",
                    result.counts.vulnerability_reports);
  out += str_format("  attacks (site reached/realized): %zu/%zu\n",
                    result.attacks.size(), result.confirmed_attacks());
  if (result.checkers_ran) {
    out += str_format("  checker findings:      %zu\n",
                      result.checker_findings.size());
  }
  if (result.predict_ran) {
    out += str_format(
        "  predict: candidates=%zu pruned=%zu new=%zu avoided=%zu\n",
        result.counts.predict_candidates, result.counts.predict_pruned,
        result.counts.predict_new_confirmed,
        result.counts.predict_schedules_avoided);
  }
  if (result.repair_ran) {
    out += str_format("  repair: status=%s strategy=%s candidates=%u\n",
                      result.repair.status.c_str(),
                      result.repair.strategy.empty()
                          ? "-"
                          : result.repair.strategy.c_str(),
                      result.repair.candidates_tried);
  }
  out += str_format("  resilience:            %s\n",
                    result.counts.resilience_summary().c_str());
  if (result.degraded()) {
    for (const support::FailureRecord& record : result.counts.failures) {
      out += str_format("    %s\n", record.to_string().c_str());
    }
  }
  return out;
}

std::string render_cli_details(const PipelineResult& result,
                               bool print_reports) {
  std::string out;
  if (print_reports) {
    out += str_format("\n--- verified races (%s) ---\n",
                      result.target_name.c_str());
    for (const race::RaceReport& report :
         result.store.stage(Stage::kAfterRaceVerifier)) {
      out += report.to_string();
      out += "\n";
    }
  }
  if (!result.exploits.empty()) {
    out += str_format("\n--- vulnerable input hints (%s) ---\n",
                      result.target_name.c_str());
    for (const vuln::ExploitReport& exploit : result.exploits) {
      out += vuln::render_hint(exploit);
    }
  }
  if (!result.attacks.empty()) {
    out += str_format("\n--- attacks (%s) ---\n", result.target_name.c_str());
    for (const ConcurrencyAttack& attack : result.attacks) {
      out += attack.to_string();
    }
  }
  if (result.checkers_ran) {
    out += str_format("\n--- checker findings (%s) ---\n",
                      result.target_name.c_str());
    if (result.checker_findings.empty()) {
      out += "none\n";
    }
    for (const checkers::BugReport& report : result.checker_findings) {
      out += report.to_string();
    }
  }
  if (result.repair_ran) {
    // Identical from the CLI and from owl_served: everything here is a
    // function of the analysis alone — file paths (out_dir) never appear,
    // only the deterministic basename of the fixed module.
    const repair::RepairReport& repair = result.repair;
    out += str_format("\n--- repair (%s) ---\n", result.target_name.c_str());
    out += str_format("status: %s\n", repair.status.c_str());
    if (repair.status == "repaired") {
      out += str_format("strategy: %s\n", repair.strategy.c_str());
      if (!repair.lock.empty()) {
        out += str_format("lock: @%s\n", repair.lock.c_str());
      }
      out += str_format("fixed module: %s\n", repair.fixed_module.c_str());
      out += str_format(
          "gates: race-free=%s no-new-findings=%s output-identical=%s\n",
          repair.gate_race_free ? "pass" : "fail",
          repair.gate_no_new_findings ? "pass" : "fail",
          repair.gate_output_equal ? "pass" : "fail");
    }
    out += str_format("candidates tried: %u\n", repair.candidates_tried);
    if (!repair.races.empty()) {
      out += "confirmed races:\n";
      for (const repair::RepairedRace& race : repair.races) {
        out += str_format("  %s: %s <-> %s\n", race.object.c_str(),
                          race.first_loc.c_str(), race.second_loc.c_str());
      }
    }
  }
  return out;
}

}  // namespace owl::core
