// The OWL pipeline — Fig. 3 of the paper, end to end.
//
//  (1) a concurrency error detector (TSan / SKI mode) runs the program on
//      the given inputs and produces raw race reports;
//  (2) the static adhoc-synchronization detector classifies the reports,
//      annotates the busy-wait pairs, and the detector re-runs — pruning
//      benign schedules;
//  (3) the dynamic race verifier confirms which surviving reports are real
//      races, attaching §5.2 security hints;
//  (4) the static vulnerability analyzer (Algorithm 1) finds bug-to-attack
//      propagations and emits vulnerable input hints;
//  (5) the dynamic vulnerability verifier re-runs the program on the
//      vulnerable inputs and confirms which attacks are realizable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/attack.hpp"
#include "core/report_store.hpp"
#include "race/ski_detector.hpp"
#include "verify/race_verifier.hpp"
#include "verify/vuln_verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::core {

enum class DetectorKind {
  kTsan,       ///< happens-before races (applications)
  kSki,        ///< schedule exploration + watch lists (kernels)
  kAtomicity,  ///< unserializable interleavings (§8.3's CTrigger extension)
};

/// What the pipeline runs against. Workloads (src/workloads) produce these.
struct PipelineTarget {
  std::string name;                 ///< program name for reports
  const ir::Module* module = nullptr;
  /// Fresh machine configured with the *testing* inputs (detection runs).
  race::MachineFactory factory;
  /// Fresh machine configured with the *vulnerable* inputs inferred from
  /// the input hints (verification runs). Falls back to `factory` if unset.
  race::MachineFactory exploit_factory;
  /// Exploit-driver ordering hint for the vulnerability verifier.
  std::vector<interp::ThreadId> thread_order;
  DetectorKind detector = DetectorKind::kTsan;
  unsigned detection_schedules = 4;  ///< schedules explored in steps (1)/(2)
  std::uint64_t seed = 1;
};

struct PipelineOptions {
  bool enable_adhoc_annotation = true;  ///< ablation knob (step 2)
  /// When set, step (2) applies these annotations instead of running OWL's
  /// report-guided classifier — the hook for plugging in a different
  /// adhoc-sync front end (e.g. the SyncFinder-like static scanner, used by
  /// bench/ext_syncfinder for the §5.1 precision comparison). Not owned.
  const race::AnnotationSet* preset_annotations = nullptr;
  bool enable_race_verifier = true;     ///< off for kernels (paper §8.3)
  bool enable_vuln_verifier = true;
  unsigned race_verifier_attempts = 3;
  unsigned vuln_verifier_attempts = 8;
  vuln::VulnerabilityAnalyzer::Mode analyzer_mode =
      vuln::VulnerabilityAnalyzer::Mode::kDirected;
};

struct PipelineResult {
  StageCounts counts;
  ReportStore store;
  /// Vulnerability reports (vulnerable input hints) per surviving race.
  std::vector<vuln::ExploitReport> exploits;
  /// Exploits whose site the dynamic verifier reached.
  std::vector<ConcurrencyAttack> attacks;
  double total_seconds = 0.0;

  /// Attacks with a realized security consequence.
  std::size_t confirmed_attacks() const noexcept;
};

class Pipeline {
 public:
  Pipeline() : Pipeline(PipelineOptions{}) {}
  explicit Pipeline(PipelineOptions options) : options_(std::move(options)) {}

  PipelineResult run(const PipelineTarget& target) const;

  const PipelineOptions& options() const noexcept { return options_; }

 private:
  /// Steps (1)/(2): run the configured detector over N schedules.
  std::vector<race::RaceReport> detect(
      const PipelineTarget& target,
      const race::AnnotationSet* annotations) const;

  PipelineOptions options_;
};

}  // namespace owl::core
