// The OWL pipeline — Fig. 3 of the paper, end to end.
//
//  (1) a concurrency error detector (TSan / SKI mode) runs the program on
//      the given inputs and produces raw race reports;
//  (2) the static adhoc-synchronization detector classifies the reports,
//      annotates the busy-wait pairs, and the detector re-runs — pruning
//      benign schedules;
//  (3) the dynamic race verifier confirms which surviving reports are real
//      races, attaching §5.2 security hints;
//  (4) the static vulnerability analyzer (Algorithm 1) finds bug-to-attack
//      propagations and emits vulnerable input hints;
//  (5) the dynamic vulnerability verifier re-runs the program on the
//      vulnerable inputs and confirms which attacks are realizable.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checkers/checker.hpp"
#include "core/attack.hpp"
#include "core/report_store.hpp"
#include "analysis/value_flow.hpp"
#include "race/predict/predict_mode.hpp"
#include "race/predict/trace_recorder.hpp"
#include "race/prescreen_view.hpp"
#include "race/ski_detector.hpp"
#include "repair/report.hpp"
#include "support/deadline.hpp"
#include "support/fault_injector.hpp"
#include "support/retry.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "verify/race_verifier.hpp"
#include "verify/vuln_verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::core {

/// Runtime store→load dependence recorder for --vuln-flow audit; defined
/// in pipeline.cpp, attached to detection machines like the predict
/// stage's TraceRecorder (behavior-neutral observation).
class FlowAuditRecorder;

enum class DetectorKind {
  kTsan,       ///< happens-before races (applications)
  kSki,        ///< schedule exploration + watch lists (kernels)
  kAtomicity,  ///< unserializable interleavings (§8.3's CTrigger extension)
};

/// What the pipeline runs against. Workloads (src/workloads) produce these.
struct PipelineTarget {
  std::string name;                 ///< program name for reports
  const ir::Module* module = nullptr;
  /// Fresh machine configured with the *testing* inputs (detection runs).
  race::MachineFactory factory;
  /// Fresh machine configured with the *vulnerable* inputs inferred from
  /// the input hints (verification runs). Falls back to `factory` if unset.
  race::MachineFactory exploit_factory;
  /// Exploit-driver ordering hint for the vulnerability verifier.
  std::vector<interp::ThreadId> thread_order;
  /// Builds a machine factory for an *arbitrary* module — the repair
  /// stage's hook for running the full pipeline on patched clones (the
  /// shared_ptr keeps the clone alive inside the returned factory). Unset
  /// means repair cannot verify candidates and degrades for this target.
  std::function<race::MachineFactory(std::shared_ptr<const ir::Module>)>
      factory_for_module;
  DetectorKind detector = DetectorKind::kTsan;
  unsigned detection_schedules = 4;  ///< schedules explored in steps (1)/(2)
  std::uint64_t seed = 1;
};

/// Per-stage allowances for the Fig. 3 stages (unlimited by default).
/// Replaces the single Machine::max_steps cliff with stage-scoped budgets:
/// a stage that exhausts its allowance degrades (FailureRecord on the
/// target's StageCounts) instead of running unbounded.
struct StageBudgets {
  support::BudgetSpec detection;          ///< steps (1)+(2): detector runs
  support::BudgetSpec race_verification;  ///< step (3)
  support::BudgetSpec vuln_analysis;      ///< step (4)
  support::BudgetSpec vuln_verification;  ///< step (5)

  /// Applies one wall-clock deadline to every stage (CLI --stage-deadline).
  static StageBudgets uniform_wall(double seconds) {
    StageBudgets budgets;
    budgets.detection.wall_seconds = seconds;
    budgets.race_verification.wall_seconds = seconds;
    budgets.vuln_analysis.wall_seconds = seconds;
    budgets.vuln_verification.wall_seconds = seconds;
    return budgets;
  }
};

struct PipelineOptions {
  bool enable_adhoc_annotation = true;  ///< ablation knob (step 2)
  /// Detection-substrate implementation for steps (1)/(2). kFast is the
  /// default; kReference is the original hash-map substrate the CI
  /// differential gate diffs against (both emit byte-identical reports).
  race::DetectorImpl detector_impl = race::DetectorImpl::kFast;
  /// When set, step (2) applies these annotations instead of running OWL's
  /// report-guided classifier — the hook for plugging in a different
  /// adhoc-sync front end (e.g. the SyncFinder-like static scanner, used by
  /// bench/ext_syncfinder for the §5.1 precision comparison). Not owned.
  const race::AnnotationSet* preset_annotations = nullptr;
  /// Static may-race prescreen consulted by the detection substrate
  /// (DESIGN.md §9). kOff (default) skips nothing; kOn prunes shadow work
  /// for accesses the whole-module analysis proved race-free; kAudit runs
  /// full detection and counts pruned-but-raced soundness violations
  /// (advisory counter prescreen.audit_violations — must stay zero).
  race::PrescreenMode prescreen = race::PrescreenMode::kOff;
  /// Sync-preserving race prediction (DESIGN.md §12). kOff (default)
  /// changes nothing; kOn hands the race verifier only predicted-feasible
  /// candidates plus replay-confirmed predicted races the observed
  /// schedules never exhibited; kAudit keeps the exhaustive path and
  /// cross-checks the predictor's verdicts against what the verifier
  /// confirmed (advisory counter predict.audit_violations — must stay
  /// zero).
  race::PredictMode predict = race::PredictMode::kOff;
  /// Memory-aware value flow for Algorithm 1 (DESIGN.md §14). kOff
  /// (default) keeps the register-only walk, byte-identical everywhere;
  /// kOn builds the module value-flow graph and extends the walk across
  /// store→load may-alias edges; kAudit additionally records every
  /// runtime store→load dependence the detection schedules exhibit and
  /// cross-checks it against the static edge set (advisory counter
  /// vulnflow.audit_violations — must stay zero).
  analysis::ValueFlowMode vuln_flow = analysis::ValueFlowMode::kOff;
  bool enable_race_verifier = true;     ///< off for kernels (paper §8.3)
  bool enable_vuln_verifier = true;
  unsigned race_verifier_attempts = 3;
  unsigned vuln_verifier_attempts = 8;
  vuln::VulnerabilityAnalyzer::Mode analyzer_mode =
      vuln::VulnerabilityAnalyzer::Mode::kDirected;
  /// Concurrency checker suite beyond data races (DESIGN.md §11): deadlock,
  /// atomicity, lock-mismatch, condition-variable misuse. All off by
  /// default — with every checker off the pipeline's output is
  /// byte-identical to a build without the suite.
  checkers::CheckerOptions checkers;
  /// Automated race repair (DESIGN.md §13). Off by default — with repair
  /// off every output is byte-identical to a build without the stage. The
  /// stage never enables itself recursively: verification pipelines the
  /// repair engine spawns run with this reset to the default.
  repair::RepairOptions repair;

  // --- resilience layer ---
  StageBudgets stage_budgets;          ///< per-stage deadlines/step budgets
  /// Retry policy for the schedule-dependent stages (detection re-runs,
  /// racing-moment capture, vulnerability verification): seed rotation +
  /// exponential budget growth per retry.
  support::RetryPolicy retry;
  /// Deterministic fault-injection harness; null disables injection. Not
  /// owned; must outlive the pipeline run.
  support::FaultInjector* fault_injector = nullptr;
  /// Keep reports the race verifier could not process (livelock/budget) in
  /// the surviving set instead of silently eliminating them. Conservative
  /// for security: degradation must not hide a potential attack.
  bool keep_unverified_on_degradation = true;

  // --- parallel execution ---
  /// Worker threads for run_many's target fan-out: 1 = in-caller
  /// sequential loop, 0 = hardware_concurrency, N = a pool of N. Results
  /// are byte-identical for every value — each target's schedules derive
  /// from its own seed (splittable support::Rng streams, see DESIGN.md),
  /// results are collected in input order, and fault injection forks per
  /// target — so jobs changes wall-clock only.
  unsigned jobs = 1;
  /// Shards the race verifier's schedule-exploration attempts across this
  /// pool (not owned; null disables). Applies to Pipeline::run; run_many
  /// does not forward it to its workers (target-level parallelism already
  /// saturates the pool, and two nested fan-outs oversubscribe).
  support::ThreadPool* verifier_pool = nullptr;
  /// Concurrent-safe per-stage wall-clock aggregation (not owned; may be
  /// null). Workers from every target record into the same instance.
  StageTimings* stage_timings = nullptr;

  // --- observability ---
  /// When non-empty, run_many writes a run manifest (core/manifest.hpp:
  /// inputs, options, seeds, StageCounts, metrics snapshot) here after the
  /// sweep; a write failure degrades the driver, not the results.
  std::string manifest_path;
  /// Tool label recorded in the manifest ("owl_cli", "bench:table2", ...).
  std::string manifest_tool = "pipeline";
};

struct PipelineResult {
  std::string target_name;
  StageCounts counts;
  ReportStore store;
  /// Vulnerability reports (vulnerable input hints) per surviving race.
  std::vector<vuln::ExploitReport> exploits;
  /// Exploits whose site the dynamic verifier reached.
  std::vector<ConcurrencyAttack> attacks;
  /// Checker-suite findings (empty unless checkers were enabled), sorted
  /// into BugReportMgr's deterministic order.
  std::vector<checkers::BugReport> checker_findings;
  /// True when the checker stage ran — rendering keys off this, not off
  /// findings being non-empty, so "ran and found nothing" is visible.
  bool checkers_ran = false;
  /// True when the predict stage ran (same gating idiom as checkers_ran).
  bool predict_ran = false;
  /// Repair-stage outcome (status empty unless the stage ran).
  repair::RepairReport repair;
  /// True when the repair stage ran (same gating idiom as checkers_ran).
  bool repair_ran = false;
  double total_seconds = 0.0;

  /// Attacks with a realized security consequence.
  std::size_t confirmed_attacks() const noexcept;
  /// One or more stages degraded (see counts.failures).
  bool degraded() const noexcept { return counts.degraded(); }
};

class Pipeline {
 public:
  Pipeline() : Pipeline(PipelineOptions{}) {}
  explicit Pipeline(PipelineOptions options) : options_(std::move(options)) {}

  /// Runs the five Fig. 3 stages on one target. Never throws: a stage
  /// failure (exception, livelock, stall, budget exhaustion) is retried per
  /// the RetryPolicy where that makes sense, then absorbed as a
  /// FailureRecord on the result's StageCounts and the remaining stages run
  /// on best-effort inputs.
  PipelineResult run(const PipelineTarget& target) const;

  /// Multi-target driver with per-target fault isolation: one result per
  /// target in input order; a target that fails catastrophically (even
  /// outside run()'s own isolation, e.g. a throwing machine factory)
  /// yields a driver-stage FailureRecord instead of sinking the whole run.
  ///
  /// Targets execute on `options().jobs` workers. Results are identical
  /// for any jobs value: every target is self-contained (own seed, own
  /// module, own machines), each worker runs against a per-target fork of
  /// the fault injector (forks are absorbed back in input order), and
  /// results land in pre-assigned slots. Note the fork semantics: a
  /// FaultPlan's `count`/dilution state is scoped per target here, even
  /// with jobs=1 — target-scoped plans (the common case) are unaffected.
  std::vector<PipelineResult> run_many(
      const std::vector<PipelineTarget>& targets) const;

  const PipelineOptions& options() const noexcept { return options_; }

 private:
  /// Steps (1)/(2): run the configured detector over N schedules under the
  /// detection budget, retrying per policy on a thrown fault. Failures are
  /// recorded on `counts`; nullopt means every attempt failed (the caller
  /// picks the fallback: empty for step (1), the raw reports for step (2)).
  /// `recorder`, when non-null, captures each schedule's event trace for
  /// the predict stage (only the final pass's traces are kept).
  std::optional<std::vector<race::RaceReport>> detect(
      const PipelineTarget& target, const race::AnnotationSet* annotations,
      race::PrescreenView prescreen, StageCounts& counts,
      race::predict::TraceRecorder* recorder,
      FlowAuditRecorder* flow_audit) const;

  /// One detection pass (no retry wrapper); throws on detector faults.
  std::vector<race::RaceReport> detect_once(
      const PipelineTarget& target, const race::AnnotationSet* annotations,
      race::PrescreenView prescreen, std::uint64_t base_seed,
      support::Budget& budget, StageCounts& counts,
      race::predict::TraceRecorder* recorder,
      FlowAuditRecorder* flow_audit) const;

  PipelineOptions options_;
};

/// Canonical, deterministic text form of a result for differential
/// comparison (tests/parallel_equivalence_test.cpp, scripts/ci.sh's
/// jobs=1-vs-jobs=4 gate). Includes everything behavioral — counts,
/// failure records, every stage's reports, exploit hints, attacks —
/// and excludes the wall-clock fields (total_seconds,
/// avg_analysis_seconds, FailureRecord::wall_seconds), which vary run
/// to run even when behavior is identical.
std::string serialize_result(const PipelineResult& result);

}  // namespace owl::core
