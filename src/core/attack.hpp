// End-to-end concurrency-attack records: a verified race, its bug-to-attack
// propagation, and the dynamic confirmation that the attack is realizable.
#pragma once

#include <string>

#include "race/report.hpp"
#include "verify/vuln_verifier.hpp"
#include "vuln/analyzer.hpp"

namespace owl::core {

struct ConcurrencyAttack {
  std::string program;        ///< workload name (e.g. "ssdb-1.9.2")
  race::RaceReport race;      ///< the underlying (verified) data race
  vuln::ExploitReport exploit;///< Algorithm 1's bug-to-attack propagation
  verify::VulnVerifyResult verification;  ///< §6.2 outcome

  /// The site was reached dynamically and a security event fired.
  bool confirmed() const noexcept {
    return verification.site_reached && verification.attack_realized;
  }

  std::string to_string() const;
};

}  // namespace owl::core
