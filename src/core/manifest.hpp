// Per-run manifests (DESIGN.md §8): one JSON document capturing what a
// pipeline run was asked to do and what came out — inputs, options, seeds,
// per-target StageCounts and failure records, and the behavioral metrics
// snapshot. Everything outside the "environment" object is deterministic
// for a fixed workload (no wall clock, no host facts, no jobs count), so CI
// byte-diffs manifests across jobs values, detector implementations, and
// repeat runs (scripts/manifest_diff.py strips "environment" and compares).
//
// Pipeline::run_many emits one automatically when
// PipelineOptions::manifest_path is set; owl_cli exposes that as
// --manifest, and bench's run_all_pipelines writes per-bench manifests
// under $OWL_MANIFEST_DIR.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"

namespace owl::core {

/// Target metadata for callers that no longer hold a PipelineTarget
/// (bench sweeps). Parallel to the results vector.
struct ManifestTarget {
  std::string name;
  std::uint64_t seed = 0;
  std::string detector;   ///< "tsan" | "ski" | "atomicity"
  unsigned schedules = 0;
};

/// Free-form key/value lists rendered in input order. `options` lines are
/// part of the diffable body; `environment` lines are stripped by diffs.
using ManifestKv = std::vector<std::pair<std::string, std::string>>;

std::string_view detector_kind_name(DetectorKind kind) noexcept;

/// Low-level renderer: full control over the option/environment echo.
/// Embeds the global MetricsRegistry snapshot (behavioral in the body,
/// wall-clock under "environment").
std::string render_manifest(const std::string& tool, const ManifestKv& options,
                            const std::vector<ManifestTarget>& targets,
                            const std::vector<PipelineResult>& results,
                            const ManifestKv& environment);

/// Convenience renderer used by Pipeline::run_many: echoes the
/// PipelineOptions knobs and derives target metadata from the targets.
std::string render_manifest(const std::string& tool,
                            const PipelineOptions& options,
                            const std::vector<PipelineTarget>& targets,
                            const std::vector<PipelineResult>& results);

/// Writes `json` to `path`; false on I/O failure.
bool write_manifest(const std::string& path, const std::string& json);

/// Removes the non-diffable "environment" tail from a rendered manifest —
/// the C++ twin of scripts/manifest_diff.py's strip. The result is the
/// deterministic body the serve layer hashes into cache entries: equal
/// bodies iff the runs were behaviorally identical.
std::string strip_manifest_environment(const std::string& manifest_json);

}  // namespace owl::core
