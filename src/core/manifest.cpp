#include "core/manifest.hpp"

#include <cstdio>

#include "support/metrics.hpp"
#include "support/strings.hpp"

namespace owl::core {
namespace {

std::string kv_json(const ManifestKv& kv) {
  std::string out = "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    if (i != 0) out += ',';
    out += json_quote(kv[i].first) + ":" + json_quote(kv[i].second);
  }
  out += "}";
  return out;
}

/// StageCounts as JSON, wall-clock excluded: avg_analysis_seconds and each
/// FailureRecord's wall_seconds vary run to run even when behavior is
/// identical, so they are not part of the diffable body.
std::string counts_json(const StageCounts& counts) {
  std::string out = str_format(
      "{\"raw_reports\":%zu,\"adhoc_syncs\":%zu,\"after_annotation\":%zu,"
      "\"verifier_eliminated\":%zu,\"remaining\":%zu,"
      "\"vulnerability_reports\":%zu,\"retries_used\":%u,",
      counts.raw_reports, counts.adhoc_syncs, counts.after_annotation,
      counts.verifier_eliminated, counts.remaining,
      counts.vulnerability_reports, counts.retries_used);
  if (counts.checkers_ran) {
    // Present only when the checker stage ran, so manifests from
    // checkers-off runs stay byte-identical to pre-suite ones.
    out += str_format("\"checker_findings\":%zu,", counts.checker_findings);
  }
  if (counts.repair_ran) {
    // Same gating for the repair stage: off-mode manifests carry no
    // repair keys at all.
    out += str_format("\"repair_status\":%s,\"repair_candidates\":%zu,",
                      json_quote(counts.repair_status).c_str(),
                      counts.repair_candidates);
  }
  out += str_format("\"resilience\":%s,\"failures\":[",
                    json_quote(counts.resilience_summary()).c_str());
  for (std::size_t i = 0; i < counts.failures.size(); ++i) {
    const support::FailureRecord& record = counts.failures[i];
    if (i != 0) out += ',';
    out += str_format(
        "{\"stage\":%s,\"cause\":%s,\"detail\":%s,\"steps_spent\":%llu,"
        "\"retries\":%u}",
        json_quote(support::pipeline_stage_name(record.stage)).c_str(),
        json_quote(support::failure_cause_name(record.cause)).c_str(),
        json_quote(record.detail).c_str(),
        static_cast<unsigned long long>(record.steps_spent), record.retries);
  }
  out += "]}";
  return out;
}

std::string target_json(const ManifestTarget& target,
                        const PipelineResult& result) {
  return str_format(
      "{\"name\":%s,\"seed\":%llu,\"detector\":%s,\"schedules\":%u,"
      "\"counts\":%s,\"exploits\":%zu,\"attacks\":%zu,"
      "\"confirmed_attacks\":%zu,\"degraded\":%s}",
      json_quote(target.name).c_str(),
      static_cast<unsigned long long>(target.seed),
      json_quote(target.detector).c_str(), target.schedules,
      counts_json(result.counts).c_str(), result.exploits.size(),
      result.attacks.size(), result.confirmed_attacks(),
      result.degraded() ? "true" : "false");
}

}  // namespace

std::string_view detector_kind_name(DetectorKind kind) noexcept {
  switch (kind) {
    case DetectorKind::kTsan: return "tsan";
    case DetectorKind::kSki: return "ski";
    case DetectorKind::kAtomicity: return "atomicity";
  }
  return "unknown";
}

std::string render_manifest(const std::string& tool, const ManifestKv& options,
                            const std::vector<ManifestTarget>& targets,
                            const std::vector<PipelineResult>& results,
                            const ManifestKv& environment) {
  const support::MetricsRegistry& registry = support::metrics();
  std::string out = "{\n";
  out += " \"schema\":\"owl-manifest-v1\",\n";
  out += " \"tool\":" + json_quote(tool) + ",\n";
  out += " \"options\":" + kv_json(options) + ",\n";
  out += " \"targets\":[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    static const ManifestTarget kUnknown;
    const ManifestTarget& meta = i < targets.size() ? targets[i] : kUnknown;
    out += "  " + target_json(meta, results[i]);
    if (i + 1 < results.size()) out += ',';
    out += '\n';
  }
  out += " ],\n";
  out += " \"metrics\":" + registry.json() + ",\n";
  // Everything below is the non-diffable tail: wall clock, worker counts,
  // anything that may legally differ between behaviorally identical runs.
  double total_seconds = 0.0;
  for (const PipelineResult& result : results) {
    total_seconds += result.total_seconds;
  }
  out += " \"environment\":{";
  out += "\"total_seconds\":" + str_format("%.6f", total_seconds);
  out += ",\"wall_metrics\":" + registry.wall_json();
  out += ",\"advisory_metrics\":" + registry.advisory_json();
  for (const auto& [key, value] : environment) {
    out += "," + json_quote(key) + ":" + json_quote(value);
  }
  out += "}\n}\n";
  return out;
}

std::string render_manifest(const std::string& tool,
                            const PipelineOptions& options,
                            const std::vector<PipelineTarget>& targets,
                            const std::vector<PipelineResult>& results) {
  ManifestKv kv;
  kv.reserve(11);
  const auto flag = [](bool b) { return std::string(b ? "true" : "false"); };
  kv.emplace_back("detector_impl",
                  options.detector_impl == race::DetectorImpl::kFast
                      ? "fast"
                      : "reference");
  kv.emplace_back("enable_adhoc_annotation",
                  flag(options.enable_adhoc_annotation));
  kv.emplace_back("enable_race_verifier", flag(options.enable_race_verifier));
  kv.emplace_back("enable_vuln_verifier", flag(options.enable_vuln_verifier));
  kv.emplace_back("race_verifier_attempts",
                  str_format("%u", options.race_verifier_attempts));
  kv.emplace_back("vuln_verifier_attempts",
                  str_format("%u", options.vuln_verifier_attempts));
  kv.emplace_back("analyzer_mode",
                  options.analyzer_mode ==
                          vuln::VulnerabilityAnalyzer::Mode::kDirected
                      ? "directed"
                      : "whole-program");
  kv.emplace_back("retries", str_format("%u", options.retry.max_retries));
  kv.emplace_back(
      "stage_deadline_seconds",
      str_format("%.3f", options.stage_budgets.detection.wall_seconds));
  kv.emplace_back("keep_unverified_on_degradation",
                  flag(options.keep_unverified_on_degradation));
  kv.emplace_back("fault_injection", flag(options.fault_injector != nullptr));
  if (options.checkers.any()) {
    // Echoed only when enabled — checkers-off manifests keep the
    // pre-suite options block byte for byte.
    kv.emplace_back("checkers", options.checkers.canonical());
  }
  if (options.repair.enabled) {
    // Same off-mode discipline as the checkers echo above.
    kv.emplace_back("repair", "on");
  }

  std::vector<ManifestTarget> metas;
  metas.reserve(targets.size());
  for (const PipelineTarget& target : targets) {
    ManifestTarget meta;
    meta.name = target.name;
    meta.seed = target.seed;
    meta.detector = detector_kind_name(target.detector);
    meta.schedules = target.detection_schedules;
    metas.push_back(std::move(meta));
  }

  ManifestKv environment;
  environment.reserve(5);
  environment.emplace_back("jobs", str_format("%u", options.jobs));
  environment.emplace_back("verifier_pool",
                           flag(options.verifier_pool != nullptr));
  // Environment, not options: the prescreen gate byte-diffs manifest
  // bodies across modes, so the mode echo must live in the stripped tail.
  environment.emplace_back(
      "prescreen", std::string(race::prescreen_mode_name(options.prescreen)));
  environment.emplace_back(
      "predict", std::string(race::predict_mode_name(options.predict)));
  environment.emplace_back(
      "vuln_flow",
      std::string(analysis::value_flow_mode_name(options.vuln_flow)));
  return render_manifest(tool, kv, metas, results, environment);
}

std::string strip_manifest_environment(const std::string& manifest_json) {
  static constexpr std::string_view kMarker = "\n \"environment\":{";
  const std::size_t pos = manifest_json.rfind(kMarker);
  if (pos == std::string::npos) return manifest_json;
  std::string body = manifest_json.substr(0, pos);
  // The preceding "metrics" line ends with the ',' that introduced the
  // environment object; drop it so the body stays valid JSON.
  if (!body.empty() && body.back() == ',') body.pop_back();
  body += "\n}\n";
  return body;
}

bool write_manifest(const std::string& path, const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  if (written != json.size()) {
    std::fclose(file);
    return false;
  }
  return std::fclose(file) == 0;
}

}  // namespace owl::core
