#include "support/deadline.hpp"

#include <chrono>

namespace owl::support {
namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BudgetSpec BudgetSpec::grown(double factor) const noexcept {
  BudgetSpec out = *this;
  if (factor <= 1.0) return out;
  if (out.wall_seconds > 0) out.wall_seconds *= factor;
  if (out.steps > 0) {
    const double grown_steps = static_cast<double>(out.steps) * factor;
    out.steps = grown_steps >= 1.8e19 ? UINT64_MAX
                                      : static_cast<std::uint64_t>(grown_steps);
  }
  return out;
}

Budget::Budget(BudgetSpec spec, ClockFn clock)
    : spec_(spec), clock_(std::move(clock)) {
  if (!clock_) clock_ = monotonic_seconds;
  start_seconds_ = clock_();
}

double Budget::elapsed_seconds() const { return clock_() - start_seconds_; }

std::uint64_t Budget::remaining_steps() const noexcept {
  if (spec_.steps == 0) return UINT64_MAX;
  return steps_spent_ >= spec_.steps ? 0 : spec_.steps - steps_spent_;
}

std::uint64_t Budget::per_run_steps(std::uint64_t cap) const noexcept {
  const std::uint64_t remaining = remaining_steps();
  return remaining < cap ? remaining : cap;
}

std::optional<FailureCause> Budget::exhausted_by() const {
  if (spec_.wall_seconds > 0 && elapsed_seconds() >= spec_.wall_seconds) {
    return FailureCause::kWallClockExhausted;
  }
  if (spec_.steps != 0 && steps_spent_ >= spec_.steps) {
    return FailureCause::kStepBudgetExhausted;
  }
  return std::nullopt;
}

}  // namespace owl::support
