#include "support/thread_pool.hpp"

#include <stdexcept>

namespace owl::support {

unsigned ThreadPool::default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful drain: even when stopping, queued work runs first; a
      // worker exits only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit on a stopping pool");
    }
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  wake_.notify_one();
  return future;
}

/// Shared state of one parallel_for call. Slots are claimed via an indexed
/// cursor; each slot's exception lands in its own pre-sized vector cell, so
/// no two threads ever touch the same cell.
struct ThreadPool::ForState {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;

  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t next = 0;
  std::size_t done = 0;
  std::vector<std::exception_ptr> errors;

  /// Claims and runs slots until none remain. Returns when the claimed
  /// cursor is exhausted (other threads may still be running theirs).
  void drive() {
    for (;;) {
      std::size_t index;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (next >= n) return;
        index = next++;
      }
      try {
        (*fn)(index);
      } catch (...) {
        errors[index] = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (++done == n) all_done.notify_all();
      }
    }
  }
};

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;
  state->errors.resize(n);

  // One driver task per worker (bounded — drivers loop over slots, so a
  // million-slot loop costs size() queue entries, not a million). The
  // caller drives too: on a saturated or single-thread pool the loop
  // still completes, and a worker issuing a nested parallel_for makes
  // progress instead of deadlocking on its own pool. Driver futures are
  // deliberately not awaited — a driver that starts after every slot is
  // claimed no-ops, and awaiting it from a pool thread would deadlock a
  // nested call; the shared state keeps itself alive for stragglers.
  const std::size_t drivers = std::min<std::size_t>(size(), n);
  for (std::size_t i = 0; i < drivers; ++i) {
    submit([state] { state->drive(); });
  }
  state->drive();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&] { return state->done == state->n; });
  }
  for (std::exception_ptr& error : state->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace owl::support
