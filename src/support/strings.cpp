#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace owl {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool parse_int64(std::string_view text, std::int64_t& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) return false;
  }
  // Accumulate in unsigned space to detect overflow cleanly.
  std::uint64_t acc = 0;
  const std::uint64_t limit =
      negative ? static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max()) +
                     1
               : static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max());
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (acc > (limit - digit) / 10) return false;
    acc = acc * 10 + digit;
  }
  // Negate in unsigned space: -INT64_MIN is not representable, but its
  // two's-complement bit pattern is, and the C++20 cast is well-defined.
  out = negative ? static_cast<std::int64_t>(~acc + 1)
                 : static_cast<std::int64_t>(acc);
  return true;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
  };
  const auto tail_ok = [&](char c) {
    return head_ok(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head_ok(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail_ok(name[i])) return false;
  }
  return true;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace owl
