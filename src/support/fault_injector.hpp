// Deterministic, seed-controlled fault injection for the pipeline.
//
// The resilience layer's claims ("a stalled schedule, a livelocked verifier
// session, or a detector crash degrades one target, not the run") are only
// trustworthy if they can be proven on demand. The FaultInjector is that
// proof harness: the pipeline driver pushes (target, stage) context, and
// instrumented code deep in the interpreter, the debugger layer, and the
// detectors probes it at well-defined points. Plans fire deterministically
// (after N matching probes, at most M times) with an optional seed-driven
// dilution, so every injected failure is replayable from its seed.
//
// Fault classes (mapped to the real-world failure modes of §5.2 and the
// surveyed detectors):
//  - kSchedulerStall:     the machine's run loop burns steps without
//                         executing instructions — a pathological schedule
//                         that exhausts the stage's step budget;
//  - kBreakpointLivelock: released breakpoints re-trigger without progress
//                         — a livelocked verifier session the §5.2 release
//                         rule alone cannot break (watchdog territory);
//  - kStageException:     a spurious detector/analyzer exception at stage
//                         entry (throws InjectedFault);
//  - kTruncatedEvents:    the machine stops delivering memory/sync events
//                         to its observers mid-stream.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/failure.hpp"
#include "support/rng.hpp"

namespace owl::support {

enum class FaultKind {
  kSchedulerStall,
  kBreakpointLivelock,
  kStageException,
  kTruncatedEvents,
  /// Service layer (owl_served): the probed phase hands out or persists
  /// corrupted bytes — a cache entry bit-flipped on write, or an entry
  /// declared unreadable on read. Exercises the integrity-verify/evict/
  /// recompute path without hand-editing files on disk.
  kCorruptedData,
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

/// The exception kStageException raises. Derived from std::runtime_error so
/// generic stage isolation catches it like any detector bug would be caught.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scheduled fault. Matching is by (kind, stage, target); firing is
/// deterministic in the probe sequence.
struct FaultPlan {
  FaultKind kind = FaultKind::kStageException;
  PipelineStage stage = PipelineStage::kDetection;
  std::string target;       ///< exact workload name; empty matches any
  std::uint64_t after = 0;  ///< skip the first N matching probes
  std::uint64_t count = 0;  ///< fire at most N times (0 = unlimited)
  /// Seed-controlled dilution: each eligible probe fires with this
  /// percentage (100 = always). Deterministic per injector seed.
  unsigned probability_percent = 100;
};

/// Parses the CLI fault spec shared by owl_cli and owl_served:
/// "stage:kind[:after]" with stage in detect|annotate|race-verify|
/// vuln-analyze|vuln-verify (pipeline) or admit|enqueue|cache-read|
/// cache-write|respond (service phases) and kind in stall|livelock|throw|
/// truncate|corrupt; `after` skips the first N matching probes. Returns
/// false on malformed specs.
bool parse_fault_plan(std::string_view text, FaultPlan& plan);

/// True for the owl_served request-lifecycle phases (kServe*).
bool is_service_phase(PipelineStage stage) noexcept;

/// First firing of a plan within one (target, stage) context.
struct InjectionEvent {
  FaultKind kind;
  PipelineStage stage;
  std::string target;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x0417)
      : rng_(seed), seed_(seed) {}

  void add_plan(FaultPlan plan) {
    plans_.push_back({std::move(plan), 0, 0, false});
  }
  bool empty() const noexcept { return plans_.empty(); }

  /// Independent copy for one parallel worker: same plans and dilution
  /// seed, fresh counters and context. Pipeline::run_many hands each
  /// target a fork, so a plan's probe/firing sequence depends only on
  /// that target's own execution — identical for jobs=1 and jobs=N. (A
  /// fork scopes lifetime state — `count` budgets, dilution draws — to
  /// its target; plans matching several targets fire per target rather
  /// than across the whole run.)
  FaultInjector fork() const;

  /// Merges a drained fork's accounting (events, firing total) back, in
  /// whatever order the driver chooses — run_many absorbs forks in input
  /// order so events() stays a complete, deterministically ordered log.
  void absorb(const FaultInjector& fork);

  // --- context, pushed by the pipeline driver ---
  void begin_target(std::string_view name);
  void begin_stage(PipelineStage stage);
  const std::string& current_target() const noexcept { return target_; }
  PipelineStage current_stage() const noexcept { return stage_; }

  // --- probes, called from instrumented code ---
  /// Machine run loop: burn this step instead of executing?
  bool should_stall() { return probe(FaultKind::kSchedulerStall); }
  /// Debugger layer: ignore the skip-once flag so a released breakpoint
  /// re-triggers immediately (verifier livelock)?
  bool livelock_breakpoints() { return probe(FaultKind::kBreakpointLivelock); }
  /// Machine observer dispatch: drop this event (truncated stream)?
  bool truncate_events() { return probe(FaultKind::kTruncatedEvents); }
  /// Stage entry: throws InjectedFault when a kStageException plan fires.
  void maybe_throw();

  // --- service-phase probes (owl_served request lifecycle) ---
  // Unlike the pipeline probes above, these name their phase explicitly:
  // service phases interleave per request rather than nesting per target,
  // so there is no driver pushing begin_stage() context around them. The
  // probe runs with the injector's stage temporarily set to `phase` (probe
  // counters are NOT reset — `after` counts probes across the daemon's
  // lifetime, which is what makes "fail the 3rd request's cache write"
  // expressible). Callers serialize access (the server wraps its service
  // injector in a mutex; see serve::ServiceCore).
  /// Throws InjectedFault when a kStageException plan matches `phase`.
  void maybe_throw_at(PipelineStage phase);
  /// True when a kCorruptedData plan matches `phase` (cache read/write).
  bool should_corrupt_at(PipelineStage phase) {
    return probe_at(phase, FaultKind::kCorruptedData);
  }
  /// True when a kSchedulerStall plan matches `phase`; the server maps it
  /// to a bounded hang — the deterministic window the crash-recovery tests
  /// kill -9 into.
  bool should_hang_at(PipelineStage phase) {
    return probe_at(phase, FaultKind::kSchedulerStall);
  }
  /// Generic phase-scoped probe backing the helpers above.
  bool probe_at(PipelineStage phase, FaultKind kind);

  // --- accounting ---
  /// First-fire-per-context log (bounded: one entry per plan per context).
  const std::vector<InjectionEvent>& events() const noexcept {
    return events_;
  }
  /// Did `kind` fire since the last begin_stage()? The pipeline uses this
  /// to attribute non-throwing faults (stalls, truncation) to the stage.
  bool fired_in_stage(FaultKind kind) const noexcept;
  /// Total probe firings (all plans, all contexts).
  std::uint64_t fired_total() const noexcept { return fired_total_; }

 private:
  struct PlanState {
    FaultPlan plan;
    std::uint64_t probes = 0;  ///< matching probes seen in current context
    std::uint64_t fired = 0;   ///< lifetime firings
    bool logged_in_context = false;
  };

  bool probe(FaultKind kind);

  std::vector<PlanState> plans_;
  Rng rng_;
  std::uint64_t seed_;
  std::string target_;
  PipelineStage stage_ = PipelineStage::kDriver;
  std::vector<InjectionEvent> events_;
  std::size_t stage_mark_ = 0;  ///< events_ size at last begin_stage
  std::uint64_t fired_total_ = 0;
};

}  // namespace owl::support
