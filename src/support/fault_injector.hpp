// Deterministic, seed-controlled fault injection for the pipeline.
//
// The resilience layer's claims ("a stalled schedule, a livelocked verifier
// session, or a detector crash degrades one target, not the run") are only
// trustworthy if they can be proven on demand. The FaultInjector is that
// proof harness: the pipeline driver pushes (target, stage) context, and
// instrumented code deep in the interpreter, the debugger layer, and the
// detectors probes it at well-defined points. Plans fire deterministically
// (after N matching probes, at most M times) with an optional seed-driven
// dilution, so every injected failure is replayable from its seed.
//
// Fault classes (mapped to the real-world failure modes of §5.2 and the
// surveyed detectors):
//  - kSchedulerStall:     the machine's run loop burns steps without
//                         executing instructions — a pathological schedule
//                         that exhausts the stage's step budget;
//  - kBreakpointLivelock: released breakpoints re-trigger without progress
//                         — a livelocked verifier session the §5.2 release
//                         rule alone cannot break (watchdog territory);
//  - kStageException:     a spurious detector/analyzer exception at stage
//                         entry (throws InjectedFault);
//  - kTruncatedEvents:    the machine stops delivering memory/sync events
//                         to its observers mid-stream.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/failure.hpp"
#include "support/rng.hpp"

namespace owl::support {

enum class FaultKind {
  kSchedulerStall,
  kBreakpointLivelock,
  kStageException,
  kTruncatedEvents,
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

/// The exception kStageException raises. Derived from std::runtime_error so
/// generic stage isolation catches it like any detector bug would be caught.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scheduled fault. Matching is by (kind, stage, target); firing is
/// deterministic in the probe sequence.
struct FaultPlan {
  FaultKind kind = FaultKind::kStageException;
  PipelineStage stage = PipelineStage::kDetection;
  std::string target;       ///< exact workload name; empty matches any
  std::uint64_t after = 0;  ///< skip the first N matching probes
  std::uint64_t count = 0;  ///< fire at most N times (0 = unlimited)
  /// Seed-controlled dilution: each eligible probe fires with this
  /// percentage (100 = always). Deterministic per injector seed.
  unsigned probability_percent = 100;
};

/// First firing of a plan within one (target, stage) context.
struct InjectionEvent {
  FaultKind kind;
  PipelineStage stage;
  std::string target;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x0417)
      : rng_(seed), seed_(seed) {}

  void add_plan(FaultPlan plan) {
    plans_.push_back({std::move(plan), 0, 0, false});
  }
  bool empty() const noexcept { return plans_.empty(); }

  /// Independent copy for one parallel worker: same plans and dilution
  /// seed, fresh counters and context. Pipeline::run_many hands each
  /// target a fork, so a plan's probe/firing sequence depends only on
  /// that target's own execution — identical for jobs=1 and jobs=N. (A
  /// fork scopes lifetime state — `count` budgets, dilution draws — to
  /// its target; plans matching several targets fire per target rather
  /// than across the whole run.)
  FaultInjector fork() const;

  /// Merges a drained fork's accounting (events, firing total) back, in
  /// whatever order the driver chooses — run_many absorbs forks in input
  /// order so events() stays a complete, deterministically ordered log.
  void absorb(const FaultInjector& fork);

  // --- context, pushed by the pipeline driver ---
  void begin_target(std::string_view name);
  void begin_stage(PipelineStage stage);
  const std::string& current_target() const noexcept { return target_; }
  PipelineStage current_stage() const noexcept { return stage_; }

  // --- probes, called from instrumented code ---
  /// Machine run loop: burn this step instead of executing?
  bool should_stall() { return probe(FaultKind::kSchedulerStall); }
  /// Debugger layer: ignore the skip-once flag so a released breakpoint
  /// re-triggers immediately (verifier livelock)?
  bool livelock_breakpoints() { return probe(FaultKind::kBreakpointLivelock); }
  /// Machine observer dispatch: drop this event (truncated stream)?
  bool truncate_events() { return probe(FaultKind::kTruncatedEvents); }
  /// Stage entry: throws InjectedFault when a kStageException plan fires.
  void maybe_throw();

  // --- accounting ---
  /// First-fire-per-context log (bounded: one entry per plan per context).
  const std::vector<InjectionEvent>& events() const noexcept {
    return events_;
  }
  /// Did `kind` fire since the last begin_stage()? The pipeline uses this
  /// to attribute non-throwing faults (stalls, truncation) to the stage.
  bool fired_in_stage(FaultKind kind) const noexcept;
  /// Total probe firings (all plans, all contexts).
  std::uint64_t fired_total() const noexcept { return fired_total_; }

 private:
  struct PlanState {
    FaultPlan plan;
    std::uint64_t probes = 0;  ///< matching probes seen in current context
    std::uint64_t fired = 0;   ///< lifetime firings
    bool logged_in_context = false;
  };

  bool probe(FaultKind kind);

  std::vector<PlanState> plans_;
  Rng rng_;
  std::uint64_t seed_;
  std::string target_;
  PipelineStage stage_ = PipelineStage::kDriver;
  std::vector<InjectionEvent> events_;
  std::size_t stage_mark_ = 0;  ///< events_ size at last begin_stage
  std::uint64_t fired_total_ = 0;
};

}  // namespace owl::support
