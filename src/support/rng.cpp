// Rng is header-only; this translation unit exists to anchor the target and
// to host the static_asserts that pin the generator's stability, which the
// replay guarantees of the whole system depend on.
#include "support/rng.hpp"

namespace owl {
namespace {

constexpr std::uint64_t first_draw_of_seed_zero() {
  std::uint64_t z = 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// If this ever changes, recorded schedules stop replaying: fail the build.
static_assert(first_draw_of_seed_zero() == 0xe220a8397b1dcdafULL,
              "SplitMix64 stream must stay stable across releases");

}  // namespace
}  // namespace owl
