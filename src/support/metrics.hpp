// Process-wide metrics registry for the pipeline (DESIGN.md §8).
//
// Named counters, gauges, and histograms record *behavioral* facts —
// detector fast-path hits vs. vector-clock fallbacks, shadow-page
// allocations, retries, livelock releases, reports pruned per stage — and a
// separate wall-clock kind records durations. serialize() renders only the
// behavioral kinds, sorted by name, so two runs with identical behavior
// produce byte-identical snapshots no matter how long they took or how many
// workers they ran on; CI diffs the snapshots directly.
//
// Values are atomics: hot paths keep local (non-atomic) tallies and flush
// once per run, so concurrent flushes from parallel pipeline workers sum to
// the same totals in any interleaving.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace owl::support {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins signed level (also supports add()).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two-bucketed distribution of unsigned integer samples. Bucket k
/// holds samples whose bit width is k (0 lands in bucket 0, 1 in bucket 1,
/// 2–3 in bucket 2, 4–7 in bucket 3, ...): integer-exact, so the rendered
/// histogram is deterministic for a fixed sample multiset.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t sample) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  static std::size_t bucket_of(std::uint64_t sample) noexcept {
    std::size_t width = 0;
    while (sample != 0) {
      ++width;
      sample >>= 1;
    }
    return width;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Accumulated wall-clock seconds. Excluded from serialize()/behavioral
/// JSON by construction — wall clock varies run to run even when behavior
/// is identical — and surfaced separately (manifest "environment").
///
/// A fourth category, *advisory* counters, sits between the two: integer
/// event counts that are deterministic for a fixed configuration but vary
/// legitimately across configurations that must stay report-equivalent
/// (detector substrate choice, --prescreen mode, jobs value). Like wall
/// clocks they are excluded from serialize()/json() so CI can byte-diff the
/// behavioral snapshot across those configurations; advisory_json() renders
/// them into the manifest's environment section.
class WallClock {
 public:
  void add(double seconds) noexcept;
  double seconds() const noexcept;
  void reset() noexcept { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> nanos_{0};  ///< integral ns: atomic + exact sum
};

/// Name → metric registry. Accessors register on first use and return
/// stable references (entries are never removed by reset()). A name is
/// bound to one kind for the registry's lifetime; re-requesting it with a
/// different kind throws std::logic_error (programmer error).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  WallClock& wall_clock(std::string_view name);

  /// Advisory counter: deterministic per configuration but excluded from
  /// the behavioral snapshot (see the class comment). Distinct namespace
  /// from counter(): a name is one kind for the registry's lifetime.
  Counter& advisory(std::string_view name);

  /// Deterministic behavioral snapshot: one line per counter/gauge/
  /// histogram, sorted by name; wall-clock metrics excluded.
  std::string serialize() const;

  /// Behavioral snapshot as a JSON object (same exclusions as serialize()).
  std::string json() const;

  /// Wall-clock metrics as a JSON object (the non-diffable complement).
  std::string wall_json() const;

  /// Advisory counters as a JSON object (manifest environment section).
  std::string advisory_json() const;

  /// Zeroes every value; registrations (names, kinds) are kept so a
  /// reset-run-serialize sequence is reproducible.
  void reset();

  /// Drops every registration. Tests only: references returned earlier
  /// dangle after this.
  void clear_for_test();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kWallClock, kAdvisory };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<WallClock> wall;
  };

  Entry& entry(std::string_view name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthand for MetricsRegistry::global() in instrumentation sites.
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace owl::support
