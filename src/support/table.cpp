#include "support/table.hpp"

#include <algorithm>
#include <cassert>

namespace owl {

TableFormatter::TableFormatter(std::vector<std::string> headers,
                               std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  assert(!headers_.empty());
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kLeft);
  }
  assert(aligns_.size() == headers_.size());
}

void TableFormatter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TableFormatter::add_rule() { rows_.push_back(Row{true, {}}); }

std::string TableFormatter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.is_rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += text;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  const auto render_rule = [&] {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c != 0) line += "-+-";
      line.append(widths[c], '-');
    }
    line += '\n';
    return line;
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += " | ";
    out += pad(headers_[c], c);
  }
  out += '\n';
  out += render_rule();
  for (const Row& row : rows_) {
    if (row.is_rule) {
      out += render_rule();
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c != 0) out += " | ";
      out += pad(row.cells[c], c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace owl
