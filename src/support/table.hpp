// ASCII table rendering for the evaluation benches.
//
// Every bench binary regenerates one of the paper's tables; TableFormatter
// renders rows in a fixed-width layout close to the paper's presentation so
// shapes can be compared side by side with the published numbers.
#pragma once

#include <string>
#include <vector>

namespace owl {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// Accumulates rows and renders an aligned ASCII table with a header rule.
class TableFormatter {
 public:
  /// `headers` defines the column count for all subsequent rows.
  explicit TableFormatter(std::vector<std::string> headers,
                          std::vector<Align> aligns = {});

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator rule at this position.
  void add_rule();

  /// Renders the full table, one trailing newline included.
  std::string render() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    bool is_rule = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace owl
