#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "support/strings.hpp"

namespace owl::support {

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // One cached buffer pointer per (thread, collector) pair. The cache key
  // includes the collector's serial because an address alone is ambiguous:
  // a destroyed test-local collector's storage can be reused by the next
  // one, and a stale hit would hand back a freed buffer.
  struct CacheEntry {
    const TraceCollector* collector;
    std::uint64_t serial;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.collector == this && entry.serial == serial_) {
      return *entry.buffer;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  cache.push_back(CacheEntry{this, serial_, buffer});
  return *buffer;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return events;
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string TraceCollector::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",\n";
    first = false;
    out += str_format(
        "{\"name\":%s,\"cat\":\"owl\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"detail\":%s,\"depth\":%u}}",
        json_quote(event.name).c_str(), event.tid,
        static_cast<double>(event.start_ns) / 1000.0,
        static_cast<double>(event.duration_ns) / 1000.0,
        json_quote(event.detail).c_str(), event.depth);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceCollector::write_chrome_trace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok && written != json.size()) std::fclose(file);
  return ok;
}

TraceSpan::TraceSpan(std::string_view name, std::string_view detail,
                     TraceCollector& collector) {
  if (!collector.enabled()) return;
  collector_ = &collector;
  buffer_ = &collector.local_buffer();
  name_ = name;
  detail_ = detail;
  depth_ = buffer_->depth++;
  start_ns_ = collector.now_ns();
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  const std::uint64_t end_ns = collector_->now_ns();
  TraceEvent event;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.tid = buffer_->tid;
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  --buffer_->depth;
  std::lock_guard<std::mutex> lock(buffer_->mutex);
  buffer_->events.push_back(std::move(event));
}

}  // namespace owl::support
