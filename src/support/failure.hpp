// Structured failure accounting for the resilience layer.
//
// When a pipeline stage exhausts its budget, livelocks, stalls, or throws,
// the run is not aborted: the stage's outcome is recorded as a
// FailureRecord and the target's results are marked *degraded*. Table 2/3
// rows then carry a resilience column instead of the whole evaluation run
// crashing — the property the paper's own five-stage evaluation (Fig. 3
// over ten programs) implicitly depends on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace owl::support {

/// The Fig. 3 pipeline stages, as the resilience layer accounts for them.
/// (core::Stage labels report *snapshots*; this labels *work*.) The kServe*
/// entries are the service-layer request phases of owl_served (DESIGN.md
/// §10) — not analysis stages, but they share this enum so FaultPlans,
/// FailureRecords, and the injection harness cover the daemon's own code
/// paths with the same machinery that covers the pipeline's.
enum class PipelineStage {
  kDetection,         ///< step (1): raw detection runs
  kAnnotation,        ///< step (2): adhoc-sync classification + re-run
  kPredict,           ///< sync-preserving race prediction (DESIGN.md §12)
  kRaceVerification,  ///< step (3): dynamic race verifier
  kVulnAnalysis,      ///< step (4): static vulnerability analysis
  kVulnVerification,  ///< step (5): dynamic vulnerability verifier
  kCheckers,          ///< concurrency checker suite (DESIGN.md §11)
  kRepair,            ///< automated race repair (DESIGN.md §13)
  kDriver,            ///< multi-target driver wrapper (catastrophic catch)
  kServeAdmit,        ///< owl_served: admission control decision
  kServeEnqueue,      ///< owl_served: bounded-queue insertion
  kServeCacheRead,    ///< owl_served: result-cache lookup + integrity check
  kServeCacheWrite,   ///< owl_served: result-cache entry write
  kServeRespond,      ///< owl_served: response write to the client
};

std::string_view pipeline_stage_name(PipelineStage stage) noexcept;

/// Why a stage (or one unit of its work) failed.
enum class FailureCause {
  kException,           ///< the stage threw (detector bug, injected fault)
  kLivelock,            ///< verifier session made no progress (watchdog)
  kWallClockExhausted,  ///< stage wall-clock deadline hit
  kStepBudgetExhausted, ///< stage interpreter-step budget hit
  kSchedulerStall,      ///< schedule made no progress (stall watchdog)
  kTruncatedEvents,     ///< detector saw a truncated event stream
};

std::string_view failure_cause_name(FailureCause cause) noexcept;

/// One degraded-stage record attached to a target's StageCounts.
struct FailureRecord {
  PipelineStage stage = PipelineStage::kDriver;
  FailureCause cause = FailureCause::kException;
  std::string detail;              ///< free-form: what/where, exception text
  std::uint64_t steps_spent = 0;   ///< interpreter steps charged to the stage
  double wall_seconds = 0.0;       ///< wall clock spent in the stage
  unsigned retries = 0;            ///< retries consumed before giving up

  /// "stage/cause (detail)" for logs and the bench resilience column.
  std::string to_string() const;
};

/// Compact summary for table cells: "ok" when empty, otherwise
/// "degraded(stage:cause[,stage:cause...])".
std::string failure_summary(const std::vector<FailureRecord>& failures);

}  // namespace owl::support
