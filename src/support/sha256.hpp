// SHA-256 (FIPS 180-4) — the content-address primitive for the serve
// layer's result cache and journal (DESIGN.md §10).
//
// Why a cryptographic hash and not the cheap mixers used elsewhere: cache
// keys are derived from (module text, options blob) and the same digest
// doubles as the on-disk integrity check for cache entries. A collision or
// a silent corruption must not cause the daemon to serve the wrong (or a
// torn) analysis result, so the hash has to make both events negligible,
// not merely rare. The implementation is self-contained (no OpenSSL — the
// container rule is "no new deps") and unit-tested against the FIPS test
// vectors in tests/serve_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace owl::support {

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); std::string hex = h.hex_digest();
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t size);
  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before further use.
  std::array<std::uint8_t, 32> digest();

  /// Finalizes and returns the digest as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

/// One-shot convenience: lowercase hex SHA-256 of `text`.
std::string sha256_hex(std::string_view text);

}  // namespace owl::support
