#include "support/failure.hpp"

namespace owl::support {

std::string_view pipeline_stage_name(PipelineStage stage) noexcept {
  switch (stage) {
    case PipelineStage::kDetection: return "detection";
    case PipelineStage::kAnnotation: return "annotation";
    case PipelineStage::kPredict: return "predict";
    case PipelineStage::kRaceVerification: return "race-verification";
    case PipelineStage::kVulnAnalysis: return "vuln-analysis";
    case PipelineStage::kVulnVerification: return "vuln-verification";
    case PipelineStage::kCheckers: return "checkers";
    case PipelineStage::kRepair: return "repair";
    case PipelineStage::kDriver: return "driver";
    case PipelineStage::kServeAdmit: return "serve-admit";
    case PipelineStage::kServeEnqueue: return "serve-enqueue";
    case PipelineStage::kServeCacheRead: return "serve-cache-read";
    case PipelineStage::kServeCacheWrite: return "serve-cache-write";
    case PipelineStage::kServeRespond: return "serve-respond";
  }
  return "?";
}

std::string_view failure_cause_name(FailureCause cause) noexcept {
  switch (cause) {
    case FailureCause::kException: return "exception";
    case FailureCause::kLivelock: return "livelock";
    case FailureCause::kWallClockExhausted: return "wall-clock-exhausted";
    case FailureCause::kStepBudgetExhausted: return "step-budget-exhausted";
    case FailureCause::kSchedulerStall: return "scheduler-stall";
    case FailureCause::kTruncatedEvents: return "truncated-events";
  }
  return "?";
}

std::string FailureRecord::to_string() const {
  std::string out(pipeline_stage_name(stage));
  out += "/";
  out += failure_cause_name(cause);
  if (retries > 0) {
    out += " after " + std::to_string(retries) + " retr" +
           (retries == 1 ? "y" : "ies");
  }
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

std::string failure_summary(const std::vector<FailureRecord>& failures) {
  if (failures.empty()) return "ok";
  std::string out = "degraded(";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out += ",";
    out += pipeline_stage_name(failures[i].stage);
    out += ":";
    out += failure_cause_name(failures[i].cause);
  }
  out += ")";
  return out;
}

}  // namespace owl::support
