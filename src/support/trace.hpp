// Lightweight span tracing for the Fig. 3 pipeline (DESIGN.md §8).
//
// A TRACE_SPAN(stage, detail) is an RAII span: it opens when constructed and
// records one event — name, detail, owning thread, monotonic start, duration,
// nesting depth — when it closes. Spans nest naturally (a child closes before
// its parent by scope), so a drained trace reconstructs the stage tree.
//
// Recording is per-thread: each thread appends into its own buffer (one
// uncontended mutex per buffer, taken only at span close and at drain), so
// pipeline workers never serialize against each other on a global lock.
// Buffers are owned by the collector and survive thread exit, which lets a
// drain after a ThreadPool teardown still see every worker's spans.
//
// Tracing is off by default: a disabled collector reduces a span to one
// relaxed atomic load, so instrumentation can stay on in release builds.
// The drained trace serializes to Chrome trace_event JSON ("X" complete
// events), loadable in about:tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace owl::support {

/// One closed span, in collector-epoch-relative monotonic nanoseconds.
struct TraceEvent {
  std::string name;        ///< span name (pipeline stage, sub-step)
  std::string detail;      ///< free-form argument (target, report key)
  std::uint32_t tid = 0;   ///< stable per-thread index (registration order)
  std::uint32_t depth = 0; ///< nesting depth on its thread at open time
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Process-wide trace sink. Use the singleton via instance(); tests may
/// construct their own collectors to stay isolated from the global one.
class TraceCollector {
 public:
  /// Per-thread event buffer. Owned by the collector; the owning thread
  /// appends under `mutex` (uncontended except during a drain). `depth` is
  /// touched only by the owning thread.
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;
  };

  TraceCollector() : epoch_(std::chrono::steady_clock::now()) {
    static std::atomic<std::uint64_t> next_serial{1};
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
  }

  static TraceCollector& instance();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the collector's construction (span timestamps).
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& local_buffer();

  /// Copies every recorded event, sorted by (tid, start, depth) — a
  /// deterministic order for a fixed set of events.
  std::vector<TraceEvent> snapshot() const;

  std::size_t event_count() const;

  /// Drops every recorded event (buffers stay registered).
  void clear();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;  ///< guards buffers_ registration + iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  /// Process-unique id distinguishing collectors that reuse an address
  /// (thread-local caches key on it; see local_buffer()).
  std::uint64_t serial_ = 0;
};

/// RAII span against a collector (the global one by default). A span on a
/// disabled collector records nothing and costs one atomic load.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view detail,
            TraceCollector& collector = TraceCollector::instance());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_ = nullptr;  ///< null when disabled at open
  TraceCollector::ThreadBuffer* buffer_ = nullptr;
  std::string name_;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace owl::support

#define OWL_TRACE_CONCAT_INNER(a, b) a##b
#define OWL_TRACE_CONCAT(a, b) OWL_TRACE_CONCAT_INNER(a, b)
/// Opens an RAII span on the global collector for the enclosing scope.
#define TRACE_SPAN(stage, detail) \
  ::owl::support::TraceSpan OWL_TRACE_CONCAT(owl_trace_span_, \
                                             __LINE__)(stage, detail)
