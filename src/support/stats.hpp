// Streaming summary statistics for bench measurements (trigger-effort
// sweeps, analysis-time accounting for Table 3's A.C. column) and
// concurrent-safe accumulators for measurements produced by parallel
// pipeline workers (per-stage wall-clock aggregation behind --timings).
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace owl {

/// Accumulates samples and reports min/max/mean/stddev/percentiles.
class SampleStats {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  double stddev() const noexcept;

  /// p in [0,100]; nearest-rank percentile over the collected samples.
  double percentile(double p) const;

  /// Median, i.e. percentile(50).
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;

  void ensure_sorted() const;
};

/// Thread-safe streaming accumulator: many workers add() concurrently, any
/// thread reads a consistent snapshot(). Keeps moments only (no per-sample
/// storage), so it is safe to share for the lifetime of a parallel run.
class ConcurrentStats {
 public:
  struct Snapshot {
    std::size_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0
    double stddev = 0.0;
  };

  void add(double sample);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named per-stage wall-clock aggregation for the pipeline. One instance is
/// shared by every worker of a parallel run (each record() is one stage
/// execution on one target); summary() renders stages in first-recorded
/// order so output is stable for a fixed workload order.
class StageTimings {
 public:
  void record(std::string_view stage, double seconds);
  ConcurrentStats::Snapshot stage_snapshot(std::string_view stage) const;

  /// One line per stage: "  <stage>  count N  total S  mean S  max S".
  std::string summary() const;
  bool empty() const;

 private:
  struct Entry {
    std::string name;
    ConcurrentStats stats;
    explicit Entry(std::string n) : name(std::move(n)) {}
  };

  // deque: Entry holds a mutex (immovable), and registration must not
  // invalidate entries other workers are concurrently add()ing into.
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

}  // namespace owl
