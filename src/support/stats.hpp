// Streaming summary statistics for bench measurements (trigger-effort
// sweeps, analysis-time accounting for Table 3's A.C. column).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace owl {

/// Accumulates samples and reports min/max/mean/stddev/percentiles.
class SampleStats {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  double stddev() const noexcept;

  /// p in [0,100]; nearest-rank percentile over the collected samples.
  double percentile(double p) const;

  /// Median, i.e. percentile(50).
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;

  void ensure_sorted() const;
};

}  // namespace owl
