#include "support/metrics.hpp"

#include <stdexcept>

#include "support/strings.hpp"

namespace owl::support {

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void WallClock::add(double seconds) noexcept {
  if (seconds <= 0) return;
  nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                   std::memory_order_relaxed);
}

double WallClock::seconds() const noexcept {
  return static_cast<double>(nanos_.load(std::memory_order_relaxed)) / 1e9;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry fresh;
    fresh.kind = kind;
    switch (kind) {
      case Kind::kCounter: fresh.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: fresh.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        fresh.histogram = std::make_unique<Histogram>();
        break;
      case Kind::kWallClock: fresh.wall = std::make_unique<WallClock>(); break;
      case Kind::kAdvisory:
        fresh.counter = std::make_unique<Counter>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(fresh)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry(name, Kind::kHistogram).histogram;
}

WallClock& MetricsRegistry::wall_clock(std::string_view name) {
  return *entry(name, Kind::kWallClock).wall;
}

Counter& MetricsRegistry::advisory(std::string_view name) {
  return *entry(name, Kind::kAdvisory).counter;
}

namespace {

std::string render_histogram(const Histogram& histogram) {
  std::string out = str_format(
      "count=%llu sum=%llu",
      static_cast<unsigned long long>(histogram.count()),
      static_cast<unsigned long long>(histogram.sum()));
  for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
    if (const std::uint64_t n = histogram.bucket(k); n != 0) {
      out += str_format(" b%zu:%llu", k, static_cast<unsigned long long>(n));
    }
  }
  return out;
}

std::string histogram_json(const Histogram& histogram) {
  std::string out = str_format(
      "{\"count\":%llu,\"sum\":%llu,\"buckets\":{",
      static_cast<unsigned long long>(histogram.count()),
      static_cast<unsigned long long>(histogram.sum()));
  bool first = true;
  for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
    if (const std::uint64_t n = histogram.bucket(k); n != 0) {
      if (!first) out += ',';
      first = false;
      out += str_format("\"b%zu\":%llu", k,
                        static_cast<unsigned long long>(n));
    }
  }
  out += "}}";
  return out;
}

}  // namespace

std::string MetricsRegistry::serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    switch (entry.kind) {
      case Kind::kCounter:
        out += str_format(
            "counter %s = %llu\n", name.c_str(),
            static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        out += str_format("gauge %s = %lld\n", name.c_str(),
                          static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram:
        out += str_format("histogram %s %s\n", name.c_str(),
                          render_histogram(*entry.histogram).c_str());
        break;
      case Kind::kWallClock:
      case Kind::kAdvisory:
        break;  // excluded from the behavioral snapshot
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    std::string value;
    switch (entry.kind) {
      case Kind::kCounter:
        value = str_format(
            "%llu", static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        value =
            str_format("%lld", static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram:
        value = histogram_json(*entry.histogram);
        break;
      case Kind::kWallClock:
      case Kind::kAdvisory:
        continue;  // excluded
    }
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" + value;
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::wall_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kWallClock) continue;
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" +
           str_format("%.6f", entry.wall->seconds());
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::advisory_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kAdvisory) continue;
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":" +
           str_format("%llu",
                      static_cast<unsigned long long>(entry.counter->value()));
  }
  out += "}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter:
      case Kind::kAdvisory:
        entry.counter->reset();
        break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
      case Kind::kWallClock: entry.wall->reset(); break;
    }
  }
}

void MetricsRegistry::clear_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace owl::support
