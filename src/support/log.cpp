#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace owl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;
LogSink g_sink;  // guarded by g_log_mutex; empty = stderr

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[owl %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace owl
