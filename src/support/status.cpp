#include "support/status.hpp"

namespace owl {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kVerifyError: return "verify-error";
    case StatusCode::kRuntimeError: return "runtime-error";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

Status invalid_argument_error(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status not_found_error(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status failed_precondition_error(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status parse_error(std::string message) {
  return {StatusCode::kParseError, std::move(message)};
}
Status verify_error(std::string message) {
  return {StatusCode::kVerifyError, std::move(message)};
}
Status runtime_error(std::string message) {
  return {StatusCode::kRuntimeError, std::move(message)};
}
Status unimplemented_error(std::string message) {
  return {StatusCode::kUnimplemented, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

}  // namespace owl
