// Fixed-size worker pool — the execution substrate for OWL's parallel
// fan-outs (Pipeline::run_many across targets, the race verifier's
// schedule-exploration sharding, bench sweeps).
//
// Design constraints, in priority order:
//  1. Determinism support: the pool itself never reorders *results* — all
//     parallel_for slots are indexed, exceptions are surfaced by lowest
//     index, and callers fold outcomes in input order. Concurrency changes
//     wall-clock only, never bytes.
//  2. Dogfooding: a concurrency-attack detector must not ship its own
//     races. The pool is exercised under ThreadSanitizer by scripts/ci.sh
//     (build-tsan/) on every run.
//  3. No silent loss: task exceptions are captured and rethrown at the
//     join point (submit → future, parallel_for → lowest-index rethrow),
//     never swallowed; destruction drains the queue before joining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace owl::support {

class ThreadPool {
 public:
  /// `threads == 0` sizes the pool to hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Graceful shutdown: already-queued tasks run to completion, then the
  /// workers join. Tasks submitted after destruction begins are rejected.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one task. The future surfaces the task's exception (if any)
  /// at get(); a task whose future is dropped still runs, and its
  /// exception is then contained by the packaged_task (never terminates a
  /// worker). Throws std::runtime_error if the pool is shutting down.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until every index
  /// finished. The calling thread helps execute slots, so the call makes
  /// progress even on a saturated pool and nested parallel_for from a
  /// worker cannot deadlock. If any slots threw, the lowest-index
  /// exception is rethrown after all slots completed — deterministic
  /// regardless of scheduling.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// hardware_concurrency with a floor of 1 (the value `threads == 0`
  /// resolves to); the default for CLI --jobs.
  static unsigned default_jobs() noexcept;

 private:
  struct ForState;

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace owl::support
