// Minimal leveled logger.
//
// OWL's pipeline stages narrate what they prune and why; the logger keeps
// that narration controllable so tests stay quiet and benches stay readable.
//
// The sink is thread-safe: parallel pipeline workers (Pipeline::run_many,
// the verifier's schedule sharding) log concurrently, and every line must
// reach the sink whole — one fully formatted line per call, serialized by
// the logger's mutex, never interleaved mid-line.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace owl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted (default: kWarn).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to the active sink (default: stderr) if `level` is at or
/// above the global level. Safe to call from any thread; each call
/// delivers one intact line.
void log_line(LogLevel level, const std::string& message);

/// Receives fully formatted lines instead of stderr. Called under the
/// logger's mutex — lines arrive whole, one at a time, from any thread —
/// so a capturing sink needs no locking of its own (and must not log).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs `sink` (tests capture concurrent lines this way); an empty
/// sink restores stderr. Returns the previously installed sink.
LogSink set_log_sink(LogSink sink);

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define OWL_LOG(level) ::owl::detail::LogMessage(::owl::LogLevel::level)

}  // namespace owl
