// Minimal leveled logger.
//
// OWL's pipeline stages narrate what they prune and why; the logger keeps
// that narration controllable so tests stay quiet and benches stay readable.
#pragma once

#include <sstream>
#include <string>

namespace owl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted (default: kWarn).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` is at or above the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define OWL_LOG(level) ::owl::detail::LogMessage(::owl::LogLevel::level)

}  // namespace owl
