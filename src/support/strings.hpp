// Small string utilities shared across OWL (IR printer/parser, reports).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace owl {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer (decimal, optional leading '-').
/// Returns false on malformed input or overflow.
bool parse_int64(std::string_view text, std::int64_t& out) noexcept;

/// Renders `value` with thousands separators ("24,641") for tables.
std::string with_commas(std::uint64_t value);

/// True if `name` is a valid IR identifier: [A-Za-z_.$][A-Za-z0-9_.$]*.
bool is_identifier(std::string_view name) noexcept;

/// Renders `text` as a double-quoted JSON string literal (escapes quotes,
/// backslashes, and control characters).
std::string json_quote(std::string_view text);

}  // namespace owl
