// Lightweight status / expected-value error handling for OWL.
//
// OWL components (parsers, analyzers, verifiers) report recoverable errors
// via Status / Result<T> rather than exceptions, following the project style
// of explicit error propagation at module boundaries. Programmer errors
// (broken invariants) still use assertions.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace owl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named entity does not exist
  kFailedPrecondition,///< operation not legal in current state
  kParseError,        ///< textual IR could not be parsed
  kVerifyError,       ///< IR failed structural verification
  kRuntimeError,      ///< interpreter fault (trap, OOB, deadlock, ...)
  kUnimplemented,     ///< feature intentionally not supported
  kInternal,          ///< invariant violation detected at runtime
};

/// Human-readable name of a StatusCode ("ok", "parse-error", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error result with a message. Cheap to copy on success.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error status must carry an error code");
  }

  static Status ok() noexcept { return {}; }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Renders "code: message" for logs and test failure output.
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Helpers mirroring the absl-style constructors used throughout OWL.
Status invalid_argument_error(std::string message);
Status not_found_error(std::string message);
Status failed_precondition_error(std::string message);
Status parse_error(std::string message);
Status verify_error(std::string message);
Status runtime_error(std::string message);
Status unimplemented_error(std::string message);
Status internal_error(std::string message);

/// A value or an error Status. Accessing the value of an error result is a
/// programmer error and asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from Status requires an error");
  }

  bool is_ok() const noexcept { return status_.is_ok(); }
  explicit operator bool() const noexcept { return is_ok(); }

  const Status& status() const noexcept { return status_; }

  T& value() & {
    assert(is_ok() && "value() on error Result");
    return *value_;
  }
  const T& value() const& {
    assert(is_ok() && "value() on error Result");
    return *value_;
  }
  T&& value() && {
    assert(is_ok() && "value() on error Result");
    return std::move(*value_);
  }

  /// Returns the value or throws; convenient in tests and examples where an
  /// error is fatal anyway.
  T& value_or_die() & {
    if (!is_ok()) throw std::runtime_error(status_.to_string());
    return *value_;
  }
  T&& value_or_die() && {
    if (!is_ok()) throw std::runtime_error(status_.to_string());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace owl
