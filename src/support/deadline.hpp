// Deadline / Budget — the bounded-work primitive of the resilience layer.
//
// Every stage of the pipeline runs under a Budget combining a wall-clock
// deadline with an interpreter-step allowance, replacing the single
// hard-coded Machine::max_steps cliff. A stage charges the steps each
// machine run consumed; between units of work it asks `exhausted()` and
// degrades gracefully instead of running unbounded. Budgets are cheap
// value types; an unlimited budget costs one clock read at construction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "support/failure.hpp"

namespace owl::support {

/// Declarative stage allowance. Zero means "unlimited" on either axis.
struct BudgetSpec {
  double wall_seconds = 0.0;  ///< 0 = no wall-clock deadline
  std::uint64_t steps = 0;    ///< 0 = no interpreter-step limit

  bool unlimited() const noexcept { return wall_seconds <= 0 && steps == 0; }

  /// Exponential growth for retry escalation (each retry gets `factor`
  /// times the previous allowance; unlimited axes stay unlimited).
  BudgetSpec grown(double factor) const noexcept;
};

/// A live budget: tracks wall-clock from construction and steps as charged.
class Budget {
 public:
  /// Seconds-source for tests (defaults to a monotonic clock).
  using ClockFn = std::function<double()>;

  /// Unlimited budget.
  Budget() : Budget(BudgetSpec{}) {}
  explicit Budget(BudgetSpec spec, ClockFn clock = nullptr);

  const BudgetSpec& spec() const noexcept { return spec_; }

  /// Records interpreter steps spent (e.g. RunResult::steps of one run).
  void charge_steps(std::uint64_t steps) noexcept { steps_spent_ += steps; }

  std::uint64_t steps_spent() const noexcept { return steps_spent_; }
  double elapsed_seconds() const;

  /// Steps left before the step axis exhausts; UINT64_MAX when unlimited.
  std::uint64_t remaining_steps() const noexcept;

  /// Step allowance for one machine run: min(cap, remaining), so a single
  /// run can never blow the whole stage budget. `cap` must be non-zero.
  std::uint64_t per_run_steps(std::uint64_t cap) const noexcept;

  bool exhausted() const { return exhausted_by().has_value(); }

  /// Which axis ran out first, if any. Wall clock is checked before steps
  /// so a stalled (zero-step) stage still trips its deadline.
  std::optional<FailureCause> exhausted_by() const;

 private:
  BudgetSpec spec_;
  ClockFn clock_;
  double start_seconds_ = 0.0;
  std::uint64_t steps_spent_ = 0;
};

}  // namespace owl::support
