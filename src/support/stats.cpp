#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace owl {

void SampleStats::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::min() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.front();
}

double SampleStats::max() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.back();
}

double SampleStats::mean() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const noexcept {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  const double var =
      (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void ConcurrentStats::add(double sample) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || sample < min_) min_ = sample;
  if (count_ == 0 || sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

ConcurrentStats::Snapshot ConcurrentStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  if (count_ > 0) {
    snap.mean = sum_ / static_cast<double>(count_);
  }
  if (count_ > 1) {
    const double var =
        (sum_sq_ - static_cast<double>(count_) * snap.mean * snap.mean) /
        static_cast<double>(count_ - 1);
    snap.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return snap;
}

void StageTimings::record(std::string_view stage, double seconds) {
  Entry* entry = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& candidate : entries_) {
      if (candidate.name == stage) {
        entry = &candidate;
        break;
      }
    }
    if (entry == nullptr) entry = &entries_.emplace_back(std::string(stage));
  }
  // add() outside the registry lock: ConcurrentStats has its own, and
  // deque growth never moves existing entries.
  entry->stats.add(seconds);
}

ConcurrentStats::Snapshot StageTimings::stage_snapshot(
    std::string_view stage) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.name == stage) return entry.stats.snapshot();
  }
  return {};
}

bool StageTimings::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.empty();
}

std::string StageTimings::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Entry& entry : entries_) {
    const ConcurrentStats::Snapshot snap = entry.stats.snapshot();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-18s count %4zu  total %8.3fs  mean %8.4fs  max %8.4fs\n",
                  entry.name.c_str(), snap.count, snap.sum, snap.mean,
                  snap.max);
    out += line;
  }
  return out;
}

double SampleStats::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace owl
