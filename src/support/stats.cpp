#include "support/stats.hpp"

#include <algorithm>
#include <cassert>

namespace owl {

void SampleStats::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::min() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.front();
}

double SampleStats::max() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.back();
}

double SampleStats::mean() const noexcept {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const noexcept {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  const double var =
      (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double SampleStats::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace owl
