// Bounded retries with seed rotation and exponential budget growth.
//
// The schedule-dependent stages — detection re-runs, racing-moment capture,
// vulnerability verification — can fail on a flaky schedule without the
// target being unanalyzable. A RetryPolicy makes such a failure cost one
// retry under a fresh seed (a different region of the schedule space) and
// a grown budget, rather than a lost attack.
#pragma once

#include <cstdint>

#include "support/deadline.hpp"

namespace owl::support {

struct RetryPolicy {
  /// Retries after the first attempt; 0 disables retrying.
  unsigned max_retries = 2;
  /// Seed rotation per retry. A large odd stride lands each retry in an
  /// unrelated region of the schedule space.
  std::uint64_t seed_stride = 0x9e3779b9ULL;
  /// Budget multiplier per retry (exponential growth).
  double budget_growth = 2.0;

  unsigned max_attempts() const noexcept { return max_retries + 1; }

  /// Seed for the given 0-based attempt.
  std::uint64_t seed_for(std::uint64_t base_seed,
                         unsigned attempt) const noexcept {
    return base_seed + seed_stride * attempt;
  }

  /// Budget for the given 0-based attempt: base grown `budget_growth`^attempt.
  BudgetSpec budget_for(const BudgetSpec& base,
                        unsigned attempt) const noexcept {
    BudgetSpec out = base;
    for (unsigned i = 0; i < attempt; ++i) out = out.grown(budget_growth);
    return out;
  }
};

}  // namespace owl::support
