// Deterministic pseudo-random number generation.
//
// Every stochastic choice in OWL (scheduler picks, PCT priority points,
// noise-workload shapes) flows through a seeded Rng so that any run —
// including a bug-manifesting one — can be replayed exactly from its seed.
// This mirrors how SKI enumerates schedules deterministically.
#pragma once

#include <cstdint>
#include <limits>

namespace owl {

/// SplitMix64-based generator: tiny, fast, and stable across platforms
/// (std::mt19937 would also be stable, but SplitMix is simpler to reason
/// about and trivially splittable for per-thread streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Modulo bias is irrelevant for scheduling decisions; keep it simple.
    return next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli draw with probability numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) noexcept {
    if (denom == 0) return false;
    return next_below(denom) < numer;
  }

  /// Derives an independent stream (e.g. one per simulated thread).
  Rng split() noexcept { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  std::uint64_t state_;
};

}  // namespace owl
