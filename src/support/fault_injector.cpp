#include "support/fault_injector.hpp"

#include "support/strings.hpp"

namespace owl::support {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kSchedulerStall: return "scheduler-stall";
    case FaultKind::kBreakpointLivelock: return "breakpoint-livelock";
    case FaultKind::kStageException: return "stage-exception";
    case FaultKind::kTruncatedEvents: return "truncated-events";
  }
  return "?";
}

FaultInjector FaultInjector::fork() const {
  FaultInjector out(seed_);
  for (const PlanState& state : plans_) out.add_plan(state.plan);
  return out;
}

void FaultInjector::absorb(const FaultInjector& fork) {
  events_.insert(events_.end(), fork.events_.begin(), fork.events_.end());
  fired_total_ += fork.fired_total_;
}

void FaultInjector::begin_target(std::string_view name) {
  target_.assign(name);
  for (PlanState& state : plans_) {
    state.probes = 0;
    state.logged_in_context = false;
  }
}

void FaultInjector::begin_stage(PipelineStage stage) {
  stage_ = stage;
  stage_mark_ = events_.size();
  for (PlanState& state : plans_) {
    state.probes = 0;
    state.logged_in_context = false;
  }
}

bool FaultInjector::fired_in_stage(FaultKind kind) const noexcept {
  for (std::size_t i = stage_mark_; i < events_.size(); ++i) {
    if (events_[i].kind == kind) return true;
  }
  return false;
}

bool FaultInjector::probe(FaultKind kind) {
  bool fire = false;
  for (PlanState& state : plans_) {
    const FaultPlan& plan = state.plan;
    if (plan.kind != kind || plan.stage != stage_) continue;
    if (!plan.target.empty() && plan.target != target_) continue;
    const std::uint64_t probe_index = state.probes++;
    if (probe_index < plan.after) continue;
    if (plan.count != 0 && state.fired >= plan.count) continue;
    if (plan.probability_percent < 100 &&
        !rng_.chance(plan.probability_percent, 100)) {
      continue;
    }
    if (!state.logged_in_context) {
      // First firing in this context: log it (bounded — high-frequency
      // probes like stalls fire millions of times but log once).
      events_.push_back({kind, stage_, target_});
      state.logged_in_context = true;
    }
    ++state.fired;
    ++fired_total_;
    fire = true;
  }
  return fire;
}

void FaultInjector::maybe_throw() {
  if (probe(FaultKind::kStageException)) {
    throw InjectedFault(str_format(
        "injected exception in %s on %s",
        std::string(pipeline_stage_name(stage_)).c_str(),
        target_.empty() ? "<unnamed>" : target_.c_str()));
  }
}

}  // namespace owl::support
