#include "support/fault_injector.hpp"

#include "support/strings.hpp"

namespace owl::support {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kSchedulerStall: return "scheduler-stall";
    case FaultKind::kBreakpointLivelock: return "breakpoint-livelock";
    case FaultKind::kStageException: return "stage-exception";
    case FaultKind::kTruncatedEvents: return "truncated-events";
    case FaultKind::kCorruptedData: return "corrupted-data";
  }
  return "?";
}

bool is_service_phase(PipelineStage stage) noexcept {
  switch (stage) {
    case PipelineStage::kServeAdmit:
    case PipelineStage::kServeEnqueue:
    case PipelineStage::kServeCacheRead:
    case PipelineStage::kServeCacheWrite:
    case PipelineStage::kServeRespond:
      return true;
    default:
      return false;
  }
}

bool parse_fault_plan(std::string_view text, FaultPlan& plan) {
  const std::vector<std::string> parts = split(text, ':');
  if (parts.size() < 2 || parts.size() > 3) return false;
  if (parts[0] == "detect") {
    plan.stage = PipelineStage::kDetection;
  } else if (parts[0] == "annotate") {
    plan.stage = PipelineStage::kAnnotation;
  } else if (parts[0] == "predict") {
    plan.stage = PipelineStage::kPredict;
  } else if (parts[0] == "race-verify") {
    plan.stage = PipelineStage::kRaceVerification;
  } else if (parts[0] == "vuln-analyze") {
    plan.stage = PipelineStage::kVulnAnalysis;
  } else if (parts[0] == "vuln-verify") {
    plan.stage = PipelineStage::kVulnVerification;
  } else if (parts[0] == "check") {
    plan.stage = PipelineStage::kCheckers;
  } else if (parts[0] == "repair") {
    plan.stage = PipelineStage::kRepair;
  } else if (parts[0] == "admit") {
    plan.stage = PipelineStage::kServeAdmit;
  } else if (parts[0] == "enqueue") {
    plan.stage = PipelineStage::kServeEnqueue;
  } else if (parts[0] == "cache-read") {
    plan.stage = PipelineStage::kServeCacheRead;
  } else if (parts[0] == "cache-write") {
    plan.stage = PipelineStage::kServeCacheWrite;
  } else if (parts[0] == "respond") {
    plan.stage = PipelineStage::kServeRespond;
  } else {
    return false;
  }
  if (parts[1] == "stall") {
    plan.kind = FaultKind::kSchedulerStall;
  } else if (parts[1] == "livelock") {
    plan.kind = FaultKind::kBreakpointLivelock;
  } else if (parts[1] == "throw") {
    plan.kind = FaultKind::kStageException;
  } else if (parts[1] == "truncate") {
    plan.kind = FaultKind::kTruncatedEvents;
  } else if (parts[1] == "corrupt") {
    plan.kind = FaultKind::kCorruptedData;
  } else {
    return false;
  }
  if (parts.size() == 3) {
    std::int64_t after = 0;
    if (!parse_int64(parts[2], after) || after < 0) return false;
    plan.after = static_cast<std::uint64_t>(after);
  }
  return true;
}

FaultInjector FaultInjector::fork() const {
  FaultInjector out(seed_);
  for (const PlanState& state : plans_) out.add_plan(state.plan);
  return out;
}

void FaultInjector::absorb(const FaultInjector& fork) {
  events_.insert(events_.end(), fork.events_.begin(), fork.events_.end());
  fired_total_ += fork.fired_total_;
}

void FaultInjector::begin_target(std::string_view name) {
  target_.assign(name);
  for (PlanState& state : plans_) {
    state.probes = 0;
    state.logged_in_context = false;
  }
}

void FaultInjector::begin_stage(PipelineStage stage) {
  stage_ = stage;
  stage_mark_ = events_.size();
  for (PlanState& state : plans_) {
    state.probes = 0;
    state.logged_in_context = false;
  }
}

bool FaultInjector::fired_in_stage(FaultKind kind) const noexcept {
  for (std::size_t i = stage_mark_; i < events_.size(); ++i) {
    if (events_[i].kind == kind) return true;
  }
  return false;
}

bool FaultInjector::probe(FaultKind kind) {
  bool fire = false;
  for (PlanState& state : plans_) {
    const FaultPlan& plan = state.plan;
    if (plan.kind != kind || plan.stage != stage_) continue;
    if (!plan.target.empty() && plan.target != target_) continue;
    const std::uint64_t probe_index = state.probes++;
    if (probe_index < plan.after) continue;
    if (plan.count != 0 && state.fired >= plan.count) continue;
    if (plan.probability_percent < 100 &&
        !rng_.chance(plan.probability_percent, 100)) {
      continue;
    }
    if (!state.logged_in_context) {
      // First firing in this context: log it (bounded — high-frequency
      // probes like stalls fire millions of times but log once).
      events_.push_back({kind, stage_, target_});
      state.logged_in_context = true;
    }
    ++state.fired;
    ++fired_total_;
    fire = true;
  }
  return fire;
}

bool FaultInjector::probe_at(PipelineStage phase, FaultKind kind) {
  // Swap the phase in for the duration of one probe. Counters are shared
  // with the ambient context on purpose (see the header): a service
  // injector is dedicated to service plans, so nothing else resets them.
  const PipelineStage saved = stage_;
  stage_ = phase;
  const bool fired = probe(kind);
  stage_ = saved;
  return fired;
}

void FaultInjector::maybe_throw_at(PipelineStage phase) {
  if (probe_at(phase, FaultKind::kStageException)) {
    throw InjectedFault(str_format(
        "injected exception in %s",
        std::string(pipeline_stage_name(phase)).c_str()));
  }
}

void FaultInjector::maybe_throw() {
  if (probe(FaultKind::kStageException)) {
    throw InjectedFault(str_format(
        "injected exception in %s on %s",
        std::string(pipeline_stage_name(stage_)).c_str(),
        target_.empty() ? "<unnamed>" : target_.c_str()));
  }
}

}  // namespace owl::support
